package lifecycle

import (
	"sync"
	"time"

	"repro/internal/core"
)

// buffer is one model key's bounded observation ring. Appends past the
// capacity overwrite the oldest sample, so a hot key under heavy
// observation traffic holds the freshest window of its context instead
// of growing without bound. A fine-tune digests the whole ring (old
// samples keep anchoring the context), but only *fresh* samples —
// arrivals since the last digest — count toward the triggers.
type buffer struct {
	mu       sync.Mutex
	samples  []core.Sample // ring storage; grows lazily up to capLimit
	capLimit int           // the configured BufferCap
	start    int           // index of the oldest sample
	n        int           // occupied slots

	fresh       int       // arrivals since the last digest (<= n)
	oldestFresh time.Time // arrival time of the oldest undigested sample
	tuning      bool      // a fine-tune for this key is in flight

	// Backoff state for keys whose fine-tune attempts die before the
	// fine-tune itself (model load / clone failures): failures counts
	// consecutive such deaths, and the buffer refuses to trigger before
	// retryAt, so a permanently un-loadable key cannot grind the loader
	// (and churn the registry LRU) on every scan.
	failures int
	retryAt  time.Time
}

// initialRingCap bounds the eager allocation of a brand-new key's
// ring: a key observed a handful of times costs a handful of slots,
// not the full BufferCap.
const initialRingCap = 16

func newBuffer(capacity int) *buffer {
	initial := capacity
	if initial > initialRingCap {
		initial = initialRingCap
	}
	return &buffer{samples: make([]core.Sample, initial), capLimit: capacity}
}

// add appends one observation, growing the ring (up to capLimit) or
// overwriting the oldest sample when full.
func (b *buffer) add(s core.Sample, now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == len(b.samples) && len(b.samples) < b.capLimit {
		// Grow: double up to the cap, re-linearizing the ring.
		newCap := len(b.samples) * 2
		if newCap > b.capLimit {
			newCap = b.capLimit
		}
		grown := make([]core.Sample, newCap)
		for i := 0; i < b.n; i++ {
			grown[i] = b.samples[(b.start+i)%len(b.samples)]
		}
		b.samples = grown
		b.start = 0
	}
	i := (b.start + b.n) % len(b.samples)
	if b.n == len(b.samples) {
		// Full at cap: the slot being written is the oldest; advance past it.
		b.start = (b.start + 1) % len(b.samples)
	} else {
		b.n++
	}
	b.samples[i] = s
	if b.fresh == 0 {
		b.oldestFresh = now
	}
	if b.fresh < b.n {
		b.fresh++
	}
}

// pending reports the undigested sample count.
func (b *buffer) pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fresh
}

// takeIfTriggered checks whether the buffer is due for a fine-tune at
// time now — enough fresh samples accumulated, or the oldest fresh
// sample waited past the staleness bound — and if so atomically
// snapshots the full ring contents (oldest first), marks every sample
// digested, and flags the buffer as tuning so a concurrent scan cannot
// start a second fine-tune for the same key. The returned slice is a
// copy (the ring keeps absorbing observations while the fine-tune
// runs); fresh is the digested fresh-sample count, the amount requeue
// restores if the attempt dies before fine-tuning.
func (b *buffer) takeIfTriggered(now time.Time, minSamples int, maxStaleness time.Duration) (samples []core.Sample, fresh int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tuning || b.fresh == 0 || now.Before(b.retryAt) {
		return nil, 0, false
	}
	stale := maxStaleness > 0 && now.Sub(b.oldestFresh) >= maxStaleness
	if b.fresh < minSamples && !stale {
		return nil, 0, false
	}
	out := make([]core.Sample, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.samples[(b.start+i)%len(b.samples)]
	}
	fresh = b.fresh
	b.fresh = 0
	b.tuning = true
	return out, fresh, true
}

// takeForDrain snapshots the ring for one final shutdown fine-tune,
// ignoring the sample-count, staleness, and backoff conditions: any
// fresh sample is worth digesting when the process is about to exit,
// because a digested sample becomes a checkpointed model while an
// undigested one costs a replay and a re-fine-tune on the next boot.
// Buffers mid-fine-tune are skipped — their samples are already being
// digested by the in-flight run.
func (b *buffer) takeForDrain() (samples []core.Sample, fresh int, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tuning || b.fresh == 0 {
		return nil, 0, false
	}
	out := make([]core.Sample, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.samples[(b.start+i)%len(b.samples)]
	}
	fresh = b.fresh
	b.fresh = 0
	b.tuning = true
	return out, fresh, true
}

// maxBackoffShift caps the exponential retry backoff at base << 6
// (64 scan intervals — half an hour at the default 30s interval).
const maxBackoffShift = 6

// requeue restores the freshness of n samples after a fine-tune
// attempt failed before digesting them (model load or clone failure),
// so a transient infrastructure error does not silently discard the
// key's observation window. The retry is delayed by base shifted left
// per consecutive failure: a transient blip retries on the next scans,
// a permanently un-loadable key (junk observations for a model that
// does not exist) decays to one load attempt per 64 intervals instead
// of hammering the loader forever. Freshness restoration is capped at
// the ring occupancy: samples overwritten in the meantime are gone
// regardless.
func (b *buffer) requeue(n int, now time.Time, base time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	shift := b.failures
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	b.failures++
	b.retryAt = now.Add(base << shift)
	if n <= 0 {
		return
	}
	if b.fresh == 0 {
		b.oldestFresh = now
	}
	b.fresh += n
	if b.fresh > b.n {
		b.fresh = b.n
	}
}

// purge removes every buffered sample matching drop (preserving order)
// and reports how many were removed. The fine-tune path uses it to
// evict shape-invalid observations permanently once the model
// architecture is known — otherwise they would occupy ring slots and
// be re-validated (and re-counted) by every future fine-tune.
func (b *buffer) purge(drop func(core.Sample) bool) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	kept := make([]core.Sample, 0, b.n)
	for i := 0; i < b.n; i++ {
		s := b.samples[(b.start+i)%len(b.samples)]
		if !drop(s) {
			kept = append(kept, s)
		}
	}
	removed := b.n - len(kept)
	if removed == 0 {
		return 0
	}
	copy(b.samples, kept)
	for i := len(kept); i < len(b.samples); i++ {
		b.samples[i] = core.Sample{} // drop property-slice references
	}
	b.start = 0
	b.n = len(kept)
	if b.fresh > b.n {
		b.fresh = b.n
	}
	return removed
}

// markDigested clears the freshness of every buffered sample without
// snapshotting them. Boot replay uses it when a digest record follows
// the samples in the log: they were digested by a fine-tune whose
// result is checkpointed, so they must anchor future fine-tunes without
// re-triggering one.
func (b *buffer) markDigested() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fresh = 0
}

// clearBackoff resets the failure state once an attempt gets past the
// load/clone stage again.
func (b *buffer) clearBackoff() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.retryAt = time.Time{}
}

// tuneDone clears the tuning flag, re-arming the triggers.
func (b *buffer) tuneDone() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tuning = false
}
