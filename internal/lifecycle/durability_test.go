package lifecycle

import (
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// The store satisfies the controller's durability interfaces
// structurally; pin that here so a signature drift fails to compile.
var (
	_ ObservationLog = (*store.Store)(nil)
	_ Checkpointer   = (*store.Store)(nil)
)

// durableStack builds a store-backed service + controller over dir, the
// exact wiring cmd/bellamy serve uses.
func durableStack(t *testing.T, dir string, tl *testLoader) (*store.Store, *serve.Service, *Controller) {
	t.Helper()
	st, err := store.Open(dir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	svc := serve.NewService(tl.load, serve.Options{})
	svc.Registry().SetVersionedLoader(serve.CheckpointLoader(tl.load, st))
	svc.AttachStore(st)
	ctl := New(svc.Registry(), Config{
		MinSamples: 8,
		Interval:   time.Hour, // RunOnce drives the test
		Workers:    1,
		Finetune:   fastFinetune(),
		Log:        st,
		Checkpoint: st,
	})
	svc.AttachObserver(ctl)
	return st, svc, ctl
}

// replayInto streams the store history into the controller, the boot
// path of a restarted node.
func replayInto(t *testing.T, st *store.Store, ctl *Controller) {
	t.Helper()
	err := st.Replay(store.ReplayHandler{
		Observation: func(job, env string, s core.Sample, at time.Time) {
			ctl.Restore(serve.ModelKey{Job: job, Env: env}, s, at)
		},
		Digest: func(job, env string, fresh int, at time.Time) {
			ctl.RestoreDigest(serve.ModelKey{Job: job, Env: env})
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
}

// TestLifecycleDurableRestart extends TestObserveFinetuneSwapImproves
// across a hard restart: observations flow in and trigger a fine-tune +
// swap + checkpoint, more observations arrive undigested, then the
// whole stack is torn down and rebuilt from the data directory. The
// recovered node must serve the fine-tuned version at the same version
// number, hold exactly the undigested samples as pending, and not
// re-run the already-checkpointed fine-tune.
func TestLifecycleDurableRestart(t *testing.T) {
	dir := t.TempDir()
	tl := &testLoader{t: t}
	st, svc, ctl := durableStack(t, dir, tl)
	key := serve.ModelKey{Job: "sort", Env: "c3o"}
	qs, truths := observedSamples()

	maeBefore := serviceMAE(t, svc, key, qs, truths)
	for i, q := range qs {
		if err := svc.Observe(context.Background(), key, q, truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 1 {
		t.Fatalf("RunOnce swapped %d models, want 1", n)
	}
	if v, ok := svc.Registry().Version(key); !ok || v != 2 {
		t.Fatalf("version after swap = (%d, %v), want (2, true)", v, ok)
	}
	maeTuned := serviceMAE(t, svc, key, qs, truths)
	if maeTuned >= maeBefore*0.5 {
		t.Fatalf("MAE %.2fs -> %.2fs: fine-tune did not improve enough to measure recovery", maeBefore, maeTuned)
	}
	// Observations after the digest: fresh at crash time, and they must
	// still be pending after recovery.
	const undigested = 4
	for i := 0; i < undigested; i++ {
		if err := svc.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	ingested := int64(len(qs) + undigested)
	ds := st.StoreStats()
	if ds.WALAppends != ingested+1 { // +1 digest record
		t.Fatalf("WAL holds %d records, want %d observations + 1 digest", ds.WALAppends, ingested)
	}
	if ds.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", ds.Checkpoints)
	}
	// Hard restart: close the store (kill -9 equivalence for the WAL
	// content is pinned by the store's own crash tests) and drop every
	// in-memory structure.
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, svc2, ctl2 := durableStack(t, dir, tl)
	defer st2.Close()
	replayInto(t, st2, ctl2)

	rs := st2.StoreStats()
	if rs.ReplayedObservations != ingested {
		t.Fatalf("replayed %d observations, want %d (every ingested sample)", rs.ReplayedObservations, ingested)
	}
	if rs.ReplayedDigests != 1 {
		t.Fatalf("replayed %d digests, want 1", rs.ReplayedDigests)
	}
	ls := ctl2.LifecycleStats()
	if ls.Restored != ingested+1 {
		t.Fatalf("restored = %d, want %d records", ls.Restored, ingested+1)
	}
	if ls.PendingSamples != undigested {
		t.Fatalf("pending after recovery = %d, want %d (only post-digest samples fresh)", ls.PendingSamples, undigested)
	}
	// The recovered registry serves the fine-tuned version — same
	// version number, same weights (identical predictions), without
	// touching the base-model loader.
	maeRecovered := serviceMAE(t, svc2, key, qs, truths)
	if v, ok := svc2.Registry().Version(key); !ok || v != 2 {
		t.Fatalf("recovered version = (%d, %v), want (2, true)", v, ok)
	}
	if math.Abs(maeRecovered-maeTuned) > 1e-9 {
		t.Fatalf("recovered MAE %.6fs != pre-restart MAE %.6fs: checkpoint is not the swapped model", maeRecovered, maeTuned)
	}
	if n := tl.loads.Load(); n != 1 {
		t.Fatalf("base loader ran %d times, want 1 (recovery must come from the checkpoint)", n)
	}
	if rs2 := st2.StoreStats(); rs2.CheckpointLoads != 1 {
		t.Fatalf("checkpoint loads = %d, want 1", rs2.CheckpointLoads)
	}
	// The checkpointed fine-tune must not re-run: the digest marker left
	// only the undigested tail fresh, below the trigger.
	if n := ctl2.RunOnce(); n != 0 {
		t.Fatalf("recovery re-ran %d checkpointed fine-tunes, want 0", n)
	}
	// Life goes on: enough new observations trigger the next fine-tune,
	// and the version counter continues from the recovered value.
	for i := undigested; i < 8; i++ {
		if err := svc2.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe after recovery: %v", err)
		}
	}
	if n := ctl2.RunOnce(); n != 1 {
		t.Fatalf("post-recovery RunOnce swapped %d models, want 1", n)
	}
	if v, ok := svc2.Registry().Version(key); !ok || v != 3 {
		t.Fatalf("post-recovery version = (%d, %v), want (3, true)", v, ok)
	}
}

// TestDurableObserveRejectedWhenLogFails: an observation whose WAL
// append fails must be rejected (the caller's 202 means durable), not
// admitted into the volatile ring.
func TestDurableObserveRejectedWhenLogFails(t *testing.T) {
	tl := &testLoader{t: t}
	ctl := New(serve.NewRegistry(tl.load, 4), Config{
		Log: failingLog{},
	})
	key := serve.ModelKey{Job: "sort"}
	if err := ctl.Observe(context.Background(), key, testQuery(4, 10000), 10); err == nil {
		t.Fatal("observation accepted despite a failing durable log")
	}
	st := ctl.LifecycleStats()
	if st.Observations != 0 || st.Rejected != 1 || st.LogErrors != 1 || st.PendingSamples != 0 {
		t.Fatalf("stats = %+v, want the observation rejected and counted as a log error", st)
	}
}

type failingLog struct{}

func (failingLog) AppendObservation(job, env string, s core.Sample, at time.Time) error {
	return errTransient
}
func (failingLog) AppendDigest(job, env string, fresh int, at time.Time) error {
	return errTransient
}

// TestBackoffRaceUnderConcurrentObserve is the -race regression for the
// load-failure backoff timer: scans that requeue (arming the backoff)
// race against concurrent Observe calls growing the same ring and
// against stats reads. The invariants: no data race, pending never
// exceeds the ring bound, and the backoff keeps the failing loader from
// being ground on every scan.
func TestBackoffRaceUnderConcurrentObserve(t *testing.T) {
	var loads atomic.Int64
	loader := func(key serve.ModelKey) (*core.Model, error) {
		loads.Add(1)
		return nil, errTransient
	}
	const bufferCap = 32
	ctl := New(serve.NewRegistry(loader, 4), Config{
		MinSamples: 1,
		BufferCap:  bufferCap,
		Interval:   time.Nanosecond, // backoff base: retries stay hot under the hammer
		Finetune:   fastFinetune(),
	})
	key := serve.ModelKey{Job: "ghost"}
	q := testQuery(4, 10000)
	// Seed the ring before the hammer so the very first scan already has
	// a triggered buffer to fail on.
	if err := ctl.Observe(context.Background(), key, q, 10); err != nil {
		t.Fatalf("Observe: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Ring growth: concurrent observers hammer the same key while scans
	// snapshot, requeue, and arm the backoff timer on its buffer.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := ctl.Observe(context.Background(), key, q, 10); err != nil {
					t.Errorf("Observe: %v", err)
					return
				}
				runtime.Gosched()
			}
		}()
	}
	// Stats reader: LifecycleStats walks the buffers while they churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := ctl.LifecycleStats()
			if st.PendingSamples > bufferCap {
				t.Errorf("pending %d exceeds ring bound %d", st.PendingSamples, bufferCap)
				return
			}
		}
	}()
	const scans = 60
	for i := 0; i < scans; i++ {
		ctl.RunOnce()
		runtime.Gosched() // let the observers interleave with the scans
	}
	close(stop)
	wg.Wait()

	st := ctl.LifecycleStats()
	if st.FinetuneErrors == 0 {
		t.Fatal("hammer never hit the failing loader")
	}
	if st.Finetunes != 0 {
		t.Fatalf("finetunes = %d through a loader that always fails", st.Finetunes)
	}
	if st.PendingSamples > bufferCap {
		t.Fatalf("pending %d exceeds ring bound %d", st.PendingSamples, bufferCap)
	}
	// Each RunOnce makes at most one load attempt for the key — requeue
	// arms the backoff and takeIfTriggered refuses before retryAt, even
	// with observers refreshing the ring between scans.
	if n := loads.Load(); n > scans {
		t.Fatalf("loader ran %d times across %d scans", n, scans)
	}
}
