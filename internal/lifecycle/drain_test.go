package lifecycle

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestDrainDigestsAndSealsStore pins the shutdown contract of the
// observation pipeline: a drain digests pending observations even
// below the periodic fine-tune threshold (they were accepted with a
// 202 — they must not need a lucky scan to reach a checkpoint), the
// sealed store refuses further appends, and a restart from the data
// directory recovers the drained version with nothing pending and
// zero repaired bytes.
func TestDrainDigestsAndSealsStore(t *testing.T) {
	dir := t.TempDir()
	tl := &testLoader{t: t}
	st, svc, ctl := durableStack(t, dir, tl)
	key := serve.ModelKey{Job: "sort", Env: "c3o"}
	qs, truths := observedSamples()

	// Fewer fresh samples than the MinSamples=8 trigger.
	const observed = 5
	for i := 0; i < observed; i++ {
		if err := svc.Observe(context.Background(), key, qs[i], truths[i]); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	if n := ctl.RunOnce(); n != 0 {
		t.Fatalf("RunOnce swapped %d models below the trigger, want 0", n)
	}
	if n := ctl.Drain(); n != 1 {
		t.Fatalf("Drain digested %d models, want 1 (threshold must not apply at shutdown)", n)
	}
	if v, ok := svc.Registry().Version(key); !ok || v != 2 {
		t.Fatalf("version after drain = (%d, %v), want (2, true)", v, ok)
	}
	maeDrained := serviceMAE(t, svc, key, qs[:observed], truths[:observed])
	ds := st.StoreStats()
	if ds.Checkpoints != 1 {
		t.Fatalf("checkpoints after drain = %d, want 1", ds.Checkpoints)
	}
	if n := ctl.Drain(); n != 0 {
		t.Fatalf("second Drain digested %d models, want 0 (nothing fresh left)", n)
	}

	// Seal the store; the WAL must refuse post-seal appends instead of
	// silently writing into a file another process may now own.
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	q := qs[0]
	err := st.AppendObservation("sort", "c3o", core.Sample{
		ScaleOut:   q.ScaleOut,
		Essential:  q.Essential,
		Optional:   q.Optional,
		RuntimeSec: truths[0],
	}, time.Now())
	if !errors.Is(err, store.ErrClosed) {
		t.Fatalf("append after Close = %v, want store.ErrClosed", err)
	}

	// Restart from the directory: a drained shutdown left a clean seal
	// (no torn tail to repair), a digest marker covering every sample
	// (nothing pending), and the drained model version.
	st2, svc2, ctl2 := durableStack(t, dir, tl)
	defer st2.Close()
	if rb := st2.StoreStats().RepairedBytes; rb != 0 {
		t.Fatalf("reopen repaired %d bytes, want 0 after a drained shutdown", rb)
	}
	replayInto(t, st2, ctl2)
	if ls := ctl2.LifecycleStats(); ls.PendingSamples != 0 {
		t.Fatalf("pending after recovery = %d, want 0 (drain digested everything)", ls.PendingSamples)
	}
	maeRecovered := serviceMAE(t, svc2, key, qs[:observed], truths[:observed])
	if v, ok := svc2.Registry().Version(key); !ok || v != 2 {
		t.Fatalf("recovered version = (%d, %v), want (2, true)", v, ok)
	}
	if math.Abs(maeRecovered-maeDrained) > 1e-9 {
		t.Fatalf("recovered MAE %.6fs != drained MAE %.6fs: recovery did not serve the drained checkpoint", maeRecovered, maeDrained)
	}
	if n := ctl2.RunOnce(); n != 0 {
		t.Fatalf("recovery re-ran %d drained fine-tunes, want 0", n)
	}
}

// TestDrainWithoutObservationsIsNoop: a node that saw no observations
// drains instantly with no version churn.
func TestDrainWithoutObservationsIsNoop(t *testing.T) {
	tl := &testLoader{t: t}
	svc := serve.NewService(tl.load, serve.Options{})
	ctl := New(svc.Registry(), Config{MinSamples: 8, Interval: time.Hour, Workers: 1, Finetune: fastFinetune()})
	svc.AttachObserver(ctl)
	if n := ctl.Drain(); n != 0 {
		t.Fatalf("Drain on an idle controller digested %d models, want 0", n)
	}
}
