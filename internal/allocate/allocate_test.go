package allocate

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/encoding"
)

// funcPredictor turns a runtime curve function into a Predictor.
type funcPredictor func(scaleOut int) float64

func (f funcPredictor) PredictBatchInto(dst []float64, qs []core.Query) error {
	for i, q := range qs {
		dst[i] = f(q.ScaleOut)
	}
	return nil
}

// supportedPredictor adds configurable support reporting.
type supportedPredictor struct {
	funcPredictor
	pretrained bool
	samples    int
}

func (s supportedPredictor) Pretrained() bool     { return s.pretrained }
func (s supportedPredictor) FinetuneSamples() int { return s.samples }

func testProps() ([]encoding.Property, []encoding.Property) {
	ess := []encoding.Property{
		{Name: "dataset_size_mb", Value: "10000"},
		{Name: "dataset_characteristics", Value: "uniform"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "node_type", Value: "m4.xlarge"},
	}
	opt := []encoding.Property{
		{Name: "memory_mb", Value: "16384", Optional: true},
		{Name: "cpu_cores", Value: "4", Optional: true},
	}
	return ess, opt
}

// ernestCurve is a well-behaved decreasing-then-flat runtime curve.
func ernestCurve(scaleOut int) float64 {
	x := float64(scaleOut)
	return 30 + 400/x + 2*math.Log(x)
}

func baseRequest() Request {
	ess, opt := testProps()
	return Request{
		Essential:       ess,
		Optional:        opt,
		MinScaleOut:     1,
		MaxScaleOut:     16,
		DeadlineSec:     100,
		CostPerNodeHour: 1,
	}
}

func TestSmoothDecreasingPAVA(t *testing.T) {
	e := NewEngine()
	cases := []struct {
		in, want []float64
	}{
		// Already monotone: untouched.
		{[]float64{100, 80, 60, 40}, []float64{100, 80, 60, 40}},
		// One upward jitter pools into its neighbor.
		{[]float64{100, 50, 60, 30}, []float64{100, 55, 55, 30}},
		// Fully increasing collapses to the global mean.
		{[]float64{10, 20, 30}, []float64{20, 20, 20}},
		{[]float64{42}, []float64{42}},
	}
	for ci, c := range cases {
		curve := make([]CurvePoint, len(c.in))
		for i, v := range c.in {
			curve[i] = CurvePoint{ScaleOut: i + 1, PredictedSec: v}
		}
		e.smoothDecreasing(curve)
		for i := range curve {
			if math.Abs(curve[i].SmoothedSec-c.want[i]) > 1e-12 {
				t.Errorf("case %d: smoothed[%d] = %v, want %v", ci, i, curve[i].SmoothedSec, c.want[i])
			}
			if i > 0 && curve[i].SmoothedSec > curve[i-1].SmoothedSec+1e-12 {
				t.Errorf("case %d: smoothed curve increases at %d", ci, i)
			}
		}
	}
}

func TestAllocateCheapestFeasible(t *testing.T) {
	e := NewEngine()
	req := baseRequest()
	req.DeadlineSec = 100 // ernestCurve drops below 100 around scale-out 6
	res, err := e.Allocate(funcPredictor(ernestCurve), req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Feasible || res.Fallback || res.Source != SourceModel {
		t.Fatalf("result flags = %+v, want feasible model result", res)
	}
	if len(res.Curve) != 16 {
		t.Fatalf("curve has %d points, want 16", len(res.Curve))
	}
	// Independently compute the cheapest SLO-satisfying candidate.
	best, bestCost := -1, 0.0
	for x := 1; x <= 16; x++ {
		rt := ernestCurve(x)
		if rt > req.DeadlineSec {
			continue
		}
		cost := float64(x) * rt / 3600
		if best < 0 || cost < bestCost {
			best, bestCost = x, cost
		}
	}
	if res.Chosen.ScaleOut != best {
		t.Fatalf("chose scale-out %d, want %d", res.Chosen.ScaleOut, best)
	}
	if !res.Chosen.MeetsSLO {
		t.Fatal("chosen point not marked MeetsSLO")
	}
	if res.MarginSec <= 0 || math.Abs(res.MarginSec-(req.DeadlineSec-res.Chosen.SmoothedSec)) > 1e-9 {
		t.Fatalf("margin %v inconsistent with deadline %v and runtime %v",
			res.MarginSec, req.DeadlineSec, res.Chosen.SmoothedSec)
	}
}

func TestAllocateImpossibleDeadline(t *testing.T) {
	e := NewEngine()
	req := baseRequest()
	req.DeadlineSec = 1 // nothing is this fast
	res, err := e.Allocate(funcPredictor(ernestCurve), req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if res.Feasible {
		t.Fatal("impossible deadline reported feasible")
	}
	if res.MarginSec >= 0 {
		t.Fatalf("margin %v, want negative for a violated SLO", res.MarginSec)
	}
	// Best effort: the fastest smoothed candidate (cheapest among ties).
	best := res.Curve[0]
	for _, cp := range res.Curve[1:] {
		if cp.SmoothedSec < best.SmoothedSec ||
			(cp.SmoothedSec == best.SmoothedSec && cp.Cost < best.Cost) {
			best = cp
		}
	}
	if res.Chosen != best {
		t.Fatalf("best-effort chose %+v, want %+v", res.Chosen, best)
	}
	for _, cp := range res.Curve {
		if cp.MeetsSLO {
			t.Fatalf("candidate %d marked MeetsSLO under an impossible deadline", cp.ScaleOut)
		}
	}
}

func TestAllocateSafetyMargin(t *testing.T) {
	e := NewEngine()
	req := baseRequest()
	// flat curve at 90s, deadline 100: feasible without margin, not with 20%.
	flat := funcPredictor(func(int) float64 { return 90 })
	res, err := e.Allocate(flat, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Feasible {
		t.Fatal("flat 90s curve infeasible under a 100s deadline")
	}
	req.SafetyMargin = 0.2
	res, err = e.Allocate(flat, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if res.Feasible {
		t.Fatal("90s runtime satisfies a 100s deadline with 20% margin (effective 80s)")
	}
}

func TestAllocateJitterySweepStable(t *testing.T) {
	// A sweep that jitters around the deadline: raw feasibility flips
	// point to point, the smoothed curve crosses once.
	jitter := funcPredictor(func(x int) float64 {
		base := ernestCurve(x)
		if x%2 == 0 {
			return base * 1.08
		}
		return base * 0.92
	})
	e := NewEngine()
	req := baseRequest()
	res, err := e.Allocate(jitter, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	crossings := 0
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].MeetsSLO != res.Curve[i-1].MeetsSLO {
			crossings++
		}
	}
	if crossings > 1 {
		t.Fatalf("smoothed feasibility crosses the deadline %d times, want at most once", crossings)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i].SmoothedSec > res.Curve[i-1].SmoothedSec+1e-12 {
			t.Fatalf("smoothed curve increases at index %d", i)
		}
	}
}

func TestAllocateExplicitCandidates(t *testing.T) {
	e := NewEngine()
	req := baseRequest()
	req.Candidates = []int{2, 4, 8, 12}
	res, err := e.Allocate(funcPredictor(ernestCurve), req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(res.Curve) != 4 {
		t.Fatalf("curve has %d points, want 4", len(res.Curve))
	}
	for i, want := range req.Candidates {
		if res.Curve[i].ScaleOut != want {
			t.Fatalf("curve[%d].ScaleOut = %d, want %d", i, res.Curve[i].ScaleOut, want)
		}
	}
}

func TestAllocateFallbackOnLowSupport(t *testing.T) {
	// A "model" that would predict an absurd constant, reporting zero
	// fine-tune samples; observations describe the true curve.
	p := supportedPredictor{
		funcPredictor: funcPredictor(func(int) float64 { return 1e9 }),
		pretrained:    true,
		samples:       0,
	}
	var obs []baselines.Point
	for _, x := range []int{2, 4, 8, 16} {
		obs = append(obs, baselines.Point{ScaleOut: x, Runtime: ernestCurve(x)})
	}
	e := NewEngine()
	req := baseRequest()
	req.MinModelSamples = 3
	req.Observations = obs
	res, err := e.Allocate(p, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Fallback || res.Source != SourceInterp {
		t.Fatalf("flags = fallback:%v source:%s, want interpolation fallback", res.Fallback, res.Source)
	}
	if !res.Feasible {
		t.Fatal("interpolated curve infeasible under a satisfiable deadline")
	}
	// Without observations the model is used but flagged.
	req.Observations = nil
	res, err = e.Allocate(p, req)
	if err != nil {
		t.Fatalf("Allocate without observations: %v", err)
	}
	if res.Fallback || !res.LowSupport || res.Source != SourceModel {
		t.Fatalf("flags = %+v, want low-support model result", res)
	}
	// Enough support: model trusted, no flags.
	p.samples = 5
	req.Observations = obs
	res, err = e.Allocate(p, req)
	if err != nil {
		t.Fatalf("Allocate with support: %v", err)
	}
	if res.Fallback || res.LowSupport {
		t.Fatalf("flags = %+v, want trusted model result", res)
	}
}

func TestAllocateUntrainedModelFallsBack(t *testing.T) {
	// Neither pre-trained nor fine-tuned: distrusted even without an
	// explicit MinModelSamples.
	p := supportedPredictor{funcPredictor: funcPredictor(func(int) float64 { return 1 })}
	e := NewEngine()
	req := baseRequest()
	req.Observations = []baselines.Point{{ScaleOut: 2, Runtime: 200}, {ScaleOut: 8, Runtime: 60}}
	res, err := e.Allocate(p, req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Fallback {
		t.Fatal("untrained model was trusted over available observations")
	}
}

func TestAllocateValidation(t *testing.T) {
	e := NewEngine()
	p := funcPredictor(ernestCurve)
	cases := []func(*Request){
		func(r *Request) { r.MinScaleOut = 0 },
		func(r *Request) { r.MaxScaleOut = r.MinScaleOut - 1 },
		func(r *Request) { r.Step = -2 },
		func(r *Request) { r.DeadlineSec = 0 },
		func(r *Request) { r.CostPerNodeHour = -1 },
		func(r *Request) { r.SafetyMargin = 1 },
		func(r *Request) { r.SafetyMargin = -0.1 },
		func(r *Request) { r.MinScaleOut, r.MaxScaleOut = 1, MaxCandidates+1 },
		func(r *Request) { r.Candidates = []int{4, 2} },
		func(r *Request) { r.Candidates = []int{0, 2} },
	}
	for i, mutate := range cases {
		req := baseRequest()
		mutate(&req)
		if _, err := e.Allocate(p, req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
}

// TestAllocateZeroAllocWarm is the acceptance pin of the hot path: a
// 64-candidate sweep against a warm model, on a warm engine, performs
// zero allocations per call.
func TestAllocateZeroAllocWarm(t *testing.T) {
	m := trainedModel(t, 1)
	ess, opt := testProps()
	e := NewEngine()
	req := Request{
		Essential:       ess,
		Optional:        opt,
		MinScaleOut:     1,
		MaxScaleOut:     64,
		DeadlineSec:     200,
		CostPerNodeHour: 0.5,
	}
	var res Result
	if err := e.AllocateInto(&res, m, req); err != nil { // warm all buffers
		t.Fatalf("AllocateInto: %v", err)
	}
	if len(res.Curve) != 64 {
		t.Fatalf("curve has %d points, want 64", len(res.Curve))
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := e.AllocateInto(&res, m, req); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("warm 64-candidate Allocate allocs/op = %v, want 0", allocs)
	}
}

func TestFromPointPredictor(t *testing.T) {
	ernest := baselines.NewErnest()
	var pts []baselines.Point
	for _, x := range []int{2, 4, 8, 12} {
		pts = append(pts, baselines.Point{ScaleOut: x, Runtime: ernestCurve(x)})
	}
	if err := ernest.Fit(pts); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	e := NewEngine()
	req := baseRequest()
	res, err := e.Allocate(FromPointPredictor(ernest), req)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if !res.Feasible {
		t.Fatal("Ernest-backed allocation infeasible under a satisfiable deadline")
	}
	for _, cp := range res.Curve {
		if cp.PredictedSec < 0 {
			t.Fatalf("adapter leaked a negative prediction at scale-out %d", cp.ScaleOut)
		}
	}
}

// trainedModel pre-trains a small model on an Ernest-style curve,
// memoized per seed across tests and benchmarks.
func trainedModel(t testing.TB, seed int64) *core.Model {
	cfg := core.DefaultConfig()
	cfg.PropertySize = 16
	cfg.EncodingDim = 3
	cfg.EncoderHidden = 6
	cfg.ScaleOutHidden = 8
	cfg.ScaleOutDim = 4
	cfg.PredictorHidden = 6
	cfg.PretrainEpochs = 25
	cfg.Seed = seed
	m, err := core.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var samples []core.Sample
	for c := 0; c < 2; c++ {
		factor := 1 + 0.4*float64(c)
		for _, x := range []int{2, 4, 6, 8, 10, 12} {
			samples = append(samples, core.Sample{
				ScaleOut: x,
				Essential: []encoding.Property{
					{Name: "dataset_size_mb", Value: strconv.Itoa(10000 + c*4000)},
					{Name: "dataset_characteristics", Value: "uniform"},
					{Name: "job_parameters", Value: "--iterations 100"},
					{Name: "node_type", Value: "m4.xlarge"},
				},
				Optional: []encoding.Property{
					{Name: "memory_mb", Value: "16384", Optional: true},
					{Name: "cpu_cores", Value: "4", Optional: true},
				},
				RuntimeSec: factor * ernestCurve(x),
			})
		}
	}
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	return m
}
