package allocate

// smoothDecreasing writes the least-squares non-increasing fit of the
// PredictedSec column into the SmoothedSec column, via the classic pool
// adjacent violators algorithm (PAVA) run on the reversed sequence
// (non-increasing in scale-out == non-decreasing right-to-left). Block
// scratch lives on the engine, so a warm call allocates nothing. All
// points weigh equally, so a block's weight is just its length.
//
// A perfectly monotone input passes through unchanged, so the smoothing
// only intervenes where the raw sweep actually jitters upward.
func (e *Engine) smoothDecreasing(curve []CurvePoint) {
	n := len(curve)
	if n == 0 {
		return
	}
	if cap(e.blockMean) < n {
		e.blockMean = make([]float64, n)
		e.blockLen = make([]int, n)
	}
	mean, length := e.blockMean[:0], e.blockLen[:0]

	// Right-to-left: the fitted values must be non-decreasing in this
	// direction. Each stack block holds the mean of a maximal pooled run.
	for i := n - 1; i >= 0; i-- {
		mean = append(mean, curve[i].PredictedSec)
		length = append(length, 1)
		// Pool while the new (smaller-scale-out) block is below its
		// predecessor: runtime at fewer nodes must not be smaller than
		// runtime at more nodes in the fitted curve.
		for k := len(mean) - 1; k > 0 && mean[k] < mean[k-1]; k-- {
			total := length[k] + length[k-1]
			mean[k-1] = (mean[k]*float64(length[k]) + mean[k-1]*float64(length[k-1])) / float64(total)
			length[k-1] = total
			mean, length = mean[:k], length[:k]
		}
	}

	// Expand blocks back onto the curve. Blocks were pushed from the
	// right, so block 0 covers the rightmost run.
	i := n
	for k := 0; k < len(mean); k++ {
		for j := 0; j < length[k]; j++ {
			i--
			curve[i].SmoothedSec = mean[k]
		}
	}
}
