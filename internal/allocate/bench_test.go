package allocate

import (
	"testing"
)

// BenchmarkAllocate measures the warm allocation hot path: a
// 64-candidate sweep (one batched forward pass, isotonic smoothing,
// cost/SLO selection) against a resident model. It is part of the CI
// bench-smoke run and gated by internal/ci/benchgate against the
// baseline recorded in BENCH_serve.json.
func BenchmarkAllocate(b *testing.B) {
	m := trainedModel(b, 1)
	ess, opt := testProps()
	e := NewEngine()
	req := Request{
		Essential:       ess,
		Optional:        opt,
		MinScaleOut:     1,
		MaxScaleOut:     64,
		DeadlineSec:     200,
		CostPerNodeHour: 0.5,
	}
	var res Result
	if err := e.AllocateInto(&res, m, req); err != nil {
		b.Fatalf("AllocateInto: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.AllocateInto(&res, m, req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "candidates/s")
}
