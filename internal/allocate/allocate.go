// Package allocate is the resource-allocation engine on top of the
// Bellamy prediction stack: given a job's descriptive properties, a
// candidate scale-out range, a runtime SLO (deadline) and a per-node-hour
// cost model, it sweeps every candidate in one batched forward pass,
// smooths the predicted runtime-vs-scale-out curve into a monotone
// (non-increasing) shape, and returns the cheapest configuration that
// satisfies the SLO — the decision layer the paper motivates runtime
// prediction with ("choosing a suitable resource configuration").
//
// The engine is deliberately predictor-agnostic: anything exposing the
// batched inference surface of core.Model (or serve.Model) plugs in, and
// scale-out-only baselines adapt via FromPointPredictor. When a model
// reports too little fine-tune support for the target context and the
// request carries observed (scale-out, runtime) points, the engine falls
// back to the interpolation baseline over those points instead of
// trusting an unadapted neural sweep.
package allocate

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/encoding"
)

// Predictor is the minimal batched-inference surface the engine sweeps.
// core.Model and serve.Model implement it.
type Predictor interface {
	PredictBatchInto(dst []float64, qs []core.Query) error
}

// SupportReporter is optionally implemented by predictors that know how
// much training support they have: whether they were pre-trained at all
// and how many context-specific samples the model instance was last
// fine-tuned on. The engine consults it for the fallback decision.
type SupportReporter interface {
	Pretrained() bool
	FinetuneSamples() int
}

// Source labels where the runtime curve of a Result came from.
type Source string

const (
	// SourceModel marks a curve swept from the neural model.
	SourceModel Source = "model"
	// SourceInterp marks a curve from the interpolation fallback over
	// the request's observed points.
	SourceInterp Source = "interp"
)

// MaxCandidates bounds one allocation sweep; a request expanding to more
// candidates is rejected rather than silently truncated.
const MaxCandidates = 4096

// Request is one allocation query: the context to allocate for, the
// candidate scale-outs, the SLO, and the cost model.
type Request struct {
	// Essential / Optional are the descriptive properties of the
	// execution context, in model order (as for a prediction).
	Essential []encoding.Property
	Optional  []encoding.Property

	// MinScaleOut..MaxScaleOut (inclusive) in steps of Step (0 = 1)
	// define the candidate range. Candidates, when non-empty, overrides
	// the range with an explicit strictly-ascending list — used e.g. by
	// the experiments to sweep exactly the scale-outs that have ground
	// truth.
	MinScaleOut int
	MaxScaleOut int
	Step        int
	Candidates  []int

	// DeadlineSec is the runtime SLO in seconds.
	DeadlineSec float64
	// CostPerNodeHour prices one node for one hour; the cost of a
	// configuration is scaleOut * runtime * CostPerNodeHour.
	CostPerNodeHour float64
	// SafetyMargin reserves this fraction of the deadline as headroom:
	// a candidate satisfies the SLO only when its (smoothed) runtime
	// stays below DeadlineSec * (1 - SafetyMargin). Zero means none.
	SafetyMargin float64

	// MinModelSamples is the fine-tune support the model must report
	// for the engine to trust it (0 = always trust). Below it the
	// engine falls back to interpolating Observations; without
	// observations it proceeds but flags the result LowSupport.
	MinModelSamples int
	// Observations are measured (scale-out, runtime) points of this
	// context, the substrate of the interpolation fallback.
	Observations []baselines.Point
}

// CurvePoint is one annotated candidate of the sweep.
type CurvePoint struct {
	ScaleOut int
	// PredictedSec is the raw predictor output (floored at zero).
	PredictedSec float64
	// SmoothedSec is the isotonic (non-increasing) fit the decision
	// uses; raw neural sweeps can jitter non-monotonically, which makes
	// the cheapest-feasible argmin unstable.
	SmoothedSec float64
	// Cost is scaleOut * SmoothedSec/3600 * CostPerNodeHour.
	Cost float64
	// MeetsSLO reports whether SmoothedSec fits the effective deadline.
	MeetsSLO bool
}

// Result is the outcome of one allocation sweep.
type Result struct {
	// Chosen is the selected configuration: the cheapest SLO-satisfying
	// candidate, or the best-effort (fastest, then cheapest) candidate
	// when no candidate satisfies the SLO.
	Chosen CurvePoint
	// Feasible reports whether Chosen satisfies the SLO.
	Feasible bool
	// Fallback reports that the interpolation baseline produced the
	// curve instead of the model (see Request.MinModelSamples).
	Fallback bool
	// LowSupport reports that the model had less fine-tune support than
	// requested but no observations were available to fall back on, so
	// the model sweep was used anyway.
	LowSupport bool
	// Source labels the curve's origin (model or interp).
	Source Source
	// MarginSec is DeadlineSec minus the chosen smoothed runtime — the
	// confidence margin of the decision. Negative when infeasible.
	MarginSec float64
	// MarginFrac is MarginSec relative to the deadline.
	MarginFrac float64
	// Curve holds every annotated candidate in ascending scale-out
	// order. The slice is owned by the Result and reused by
	// AllocateInto calls on the same Result value.
	Curve []CurvePoint
}

// Engine runs allocation sweeps. It owns reusable query, prediction and
// smoothing buffers, so a warm sweep (candidate count already seen)
// against a warm model allocates nothing. An Engine is not safe for
// concurrent use; the serving layer pools engines per request.
type Engine struct {
	queries []core.Query
	preds   []float64

	// PAVA block scratch (see isotonic.go).
	blockMean []float64
	blockLen  []int

	interp *baselines.Interpolator
}

// NewEngine returns an empty engine; buffers grow on first use.
func NewEngine() *Engine { return &Engine{interp: baselines.NewInterpolator()} }

// Allocate is the allocating convenience form of AllocateInto.
func (e *Engine) Allocate(p Predictor, req Request) (*Result, error) {
	res := &Result{}
	if err := e.AllocateInto(res, p, req); err != nil {
		return nil, err
	}
	return res, nil
}

// numCandidates validates the candidate specification and returns the
// sweep size.
func numCandidates(req Request) (int, error) {
	if len(req.Candidates) > 0 {
		prev := 0
		for _, c := range req.Candidates {
			if c <= prev {
				return 0, fmt.Errorf("allocate: candidates must be strictly ascending and positive, got %v", req.Candidates)
			}
			prev = c
		}
		if len(req.Candidates) > MaxCandidates {
			return 0, fmt.Errorf("allocate: %d candidates exceed limit %d", len(req.Candidates), MaxCandidates)
		}
		return len(req.Candidates), nil
	}
	step := req.Step
	if step == 0 {
		step = 1
	}
	if step < 0 {
		return 0, fmt.Errorf("allocate: step %d must be positive", step)
	}
	if req.MinScaleOut <= 0 {
		return 0, fmt.Errorf("allocate: min scale-out %d must be positive", req.MinScaleOut)
	}
	if req.MaxScaleOut < req.MinScaleOut {
		return 0, fmt.Errorf("allocate: max scale-out %d below min %d", req.MaxScaleOut, req.MinScaleOut)
	}
	n := (req.MaxScaleOut-req.MinScaleOut)/step + 1
	if n > MaxCandidates {
		return 0, fmt.Errorf("allocate: %d candidates exceed limit %d", n, MaxCandidates)
	}
	return n, nil
}

// candidate returns the i-th candidate scale-out of the request.
func candidate(req Request, i int) int {
	if len(req.Candidates) > 0 {
		return req.Candidates[i]
	}
	step := req.Step
	if step == 0 {
		step = 1
	}
	return req.MinScaleOut + i*step
}

// AllocateInto runs one allocation sweep, writing the outcome into res.
// res.Curve is reused across calls on the same Result. The model path is
// allocation-free once the candidate count and context properties have
// been seen (warm model, warm engine).
func (e *Engine) AllocateInto(res *Result, p Predictor, req Request) error {
	n, err := numCandidates(req)
	if err != nil {
		return err
	}
	if req.DeadlineSec <= 0 {
		return fmt.Errorf("allocate: deadline %v must be positive", req.DeadlineSec)
	}
	if req.CostPerNodeHour < 0 {
		return fmt.Errorf("allocate: cost per node-hour %v must not be negative", req.CostPerNodeHour)
	}
	if req.SafetyMargin < 0 || req.SafetyMargin >= 1 {
		return fmt.Errorf("allocate: safety margin %v outside [0, 1)", req.SafetyMargin)
	}

	fallback, lowSupport := e.decideSource(p, req)
	if cap(e.preds) < n {
		e.preds = make([]float64, n)
	}
	preds := e.preds[:n]

	if fallback {
		if err := e.interp.Fit(req.Observations); err != nil {
			return fmt.Errorf("allocate: fitting fallback interpolator: %w", err)
		}
		for i := range preds {
			v, err := e.interp.Predict(candidate(req, i))
			if err != nil {
				return fmt.Errorf("allocate: fallback prediction: %w", err)
			}
			preds[i] = v
		}
	} else {
		if cap(e.queries) < n {
			e.queries = make([]core.Query, n)
		}
		qs := e.queries[:n]
		for i := range qs {
			qs[i] = core.Query{
				ScaleOut:  candidate(req, i),
				Essential: req.Essential,
				Optional:  req.Optional,
			}
		}
		err := p.PredictBatchInto(preds, qs)
		clear(qs) // don't pin the caller's property slices
		if err != nil {
			return err
		}
		for i, v := range preds {
			if v < 0 { // defense in depth; core clamps at its boundary too
				preds[i] = 0
			}
		}
	}

	// Smooth the sweep into the non-increasing shape scale-out curves
	// are modeled to have (Ernest's assumption, and what makes the
	// cheapest-feasible choice a stable threshold crossing).
	res.Curve = res.Curve[:0]
	for i, v := range preds {
		res.Curve = append(res.Curve, CurvePoint{ScaleOut: candidate(req, i), PredictedSec: v})
	}
	e.smoothDecreasing(res.Curve)

	effDeadline := req.DeadlineSec * (1 - req.SafetyMargin)
	chosen, feasible := -1, false
	best := -1 // best effort: min smoothed runtime, then min cost
	for i := range res.Curve {
		cp := &res.Curve[i]
		cp.Cost = float64(cp.ScaleOut) * cp.SmoothedSec / 3600 * req.CostPerNodeHour
		cp.MeetsSLO = cp.SmoothedSec <= effDeadline
		if cp.MeetsSLO && (chosen < 0 || cp.Cost < res.Curve[chosen].Cost) {
			chosen = i
			feasible = true
		}
		if best < 0 || cp.SmoothedSec < res.Curve[best].SmoothedSec ||
			(cp.SmoothedSec == res.Curve[best].SmoothedSec && cp.Cost < res.Curve[best].Cost) {
			best = i
		}
	}
	if chosen < 0 {
		chosen = best
	}

	res.Chosen = res.Curve[chosen]
	res.Feasible = feasible
	res.Fallback = fallback
	res.LowSupport = lowSupport
	res.Source = SourceModel
	if fallback {
		res.Source = SourceInterp
	}
	res.MarginSec = req.DeadlineSec - res.Chosen.SmoothedSec
	res.MarginFrac = res.MarginSec / req.DeadlineSec
	return nil
}

// decideSource reports whether to fall back to interpolation, and
// whether the model is being used despite insufficient support. A model
// is distrusted when it reports fewer fine-tune samples than the request
// demands, or when it is neither pre-trained nor fine-tuned at all.
func (e *Engine) decideSource(p Predictor, req Request) (fallback, lowSupport bool) {
	sr, ok := p.(SupportReporter)
	if !ok {
		return false, false
	}
	samples := sr.FinetuneSamples()
	distrust := samples < req.MinModelSamples || (!sr.Pretrained() && samples == 0)
	if !distrust {
		return false, false
	}
	if len(req.Observations) > 0 {
		return true, false
	}
	return false, true
}

// pointPredictor adapts a scale-out-only predictor (the Ernest/Bell
// baselines, or a fitted core.ContextPredictor) to the engine's batched
// interface; query properties are ignored.
type pointPredictor struct{ p baselines.Predictor }

// FromPointPredictor wraps a fitted baselines.Predictor for the engine.
func FromPointPredictor(p baselines.Predictor) Predictor { return pointPredictor{p} }

// PredictBatchInto implements Predictor.
func (pp pointPredictor) PredictBatchInto(dst []float64, qs []core.Query) error {
	for i, q := range qs {
		v, err := pp.p.Predict(q.ScaleOut)
		if err != nil {
			return err
		}
		if v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return nil
}
