package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/store"
)

// writeTestModel trains a tiny model and writes it where DirLoader
// expects sort_c3o.model.
func writeTestModel(t *testing.T, dir string) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.PropertySize = 16
	cfg.EncodingDim = 3
	cfg.EncoderHidden = 6
	cfg.ScaleOutHidden = 8
	cfg.ScaleOutDim = 4
	cfg.PredictorHidden = 6
	cfg.PretrainEpochs = 25
	cfg.Seed = 1
	m, err := core.New(cfg)
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	var samples []core.Sample
	for _, x := range []int{2, 4, 6, 8, 10, 12} {
		fx := float64(x)
		samples = append(samples, core.Sample{
			ScaleOut:   x,
			Essential:  drainProps(10000),
			Optional:   nil,
			RuntimeSec: 30 + 400/fx + 10*math.Log(fx) + 1.2*fx,
		})
	}
	if _, err := m.Pretrain(samples); err != nil {
		t.Fatalf("Pretrain: %v", err)
	}
	if err := m.SaveFile(filepath.Join(dir, "sort_c3o.model")); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
}

func drainProps(sizeMB int) []encoding.Property {
	return []encoding.Property{
		{Name: "dataset_size_mb", Value: strconv.Itoa(sizeMB)},
		{Name: "dataset_characteristics", Value: "uniform"},
		{Name: "job_parameters", Value: "--iterations 100"},
		{Name: "node_type", Value: "m4.xlarge"},
	}
}

func drainWire(scaleOut int) api.PredictRequest {
	return api.PredictRequest{
		Job: "sort", Env: "c3o", ScaleOut: scaleOut,
		Essential: []api.Property{
			{Name: "dataset_size_mb", Value: "10000"},
			{Name: "dataset_characteristics", Value: "uniform"},
			{Name: "job_parameters", Value: "--iterations 100"},
			{Name: "node_type", Value: "m4.xlarge"},
		},
	}
}

// TestServeSIGTERMDrain drives the real serve entrypoint through its
// shutdown path: a server under live predict+observe traffic receives
// SIGTERM, must let every in-flight request finish, digest and seal the
// WAL, and return nil. Every observation the server acknowledged with
// a 2xx must be durable in the reopened store, and the reopened WAL
// must have nothing to repair.
func TestServeSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("real-signal end-to-end test")
	}
	root := t.TempDir()
	modelsDir := filepath.Join(root, "models")
	dataDir := filepath.Join(root, "data")
	if err := os.MkdirAll(modelsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestModel(t, modelsDir)

	ready := make(chan string, 1)
	testHookServeReady = func(addr string) { ready <- addr }
	defer func() { testHookServeReady = nil }()

	served := make(chan error, 1)
	go func() {
		served <- runServe([]string{
			"-models", modelsDir,
			"-addr", "127.0.0.1:0",
			"-observe",
			"-data-dir", dataDir,
			"-fsync", "never",
			"-rate-limit", "0",
			"-drain-timeout", "10s",
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	base := "http://" + addr

	// Live traffic: predicts and observes from a few workers until the
	// server stops accepting. Every 2xx observe is a durability promise
	// we check after the drain.
	var (
		wg          sync.WaitGroup
		acceptedObs atomic.Int64
		okPredicts  atomic.Int64
	)
	stop := make(chan struct{})
	client := &http.Client{Timeout: 30 * time.Second}
	post := func(path string, body []byte) (int, bool) {
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, false // connection refused once the listener closes
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, true
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				pb, _ := json.Marshal(drainWire(2 + (i % 6)))
				if code, up := post("/v1/predict", pb); !up {
					return
				} else if code == http.StatusOK {
					okPredicts.Add(1)
				}
				ob, _ := json.Marshal(api.ObserveRequest{
					PredictRequest: drainWire(2 + (i % 6)),
					RuntimeSec:     60 + float64(i%10),
				})
				code, up := post("/v1/observe", ob)
				if !up {
					return
				}
				if code >= 200 && code < 300 {
					acceptedObs.Add(1)
				}
			}
		}(w)
	}

	// Let traffic flow, then terminate the process the way an
	// orchestrator would.
	deadline := time.Now().Add(5 * time.Second)
	for okPredicts.Load() == 0 || acceptedObs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no traffic succeeded before SIGTERM")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("runServe after SIGTERM = %v, want nil (clean drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain within 30s of SIGTERM")
	}
	close(stop)
	wg.Wait()
	t.Logf("drained with %d ok predicts, %d accepted observations", okPredicts.Load(), acceptedObs.Load())

	// The drained store reopens with a clean seal and holds every
	// acknowledged observation.
	st, err := store.Open(dataDir, store.Options{Fsync: store.FsyncNever})
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	defer st.Close()
	if rb := st.StoreStats().RepairedBytes; rb != 0 {
		t.Fatalf("reopen repaired %d bytes, want 0 after a drained shutdown", rb)
	}
	var replayed, digests int64
	err = st.Replay(store.ReplayHandler{
		Observation: func(job, env string, s core.Sample, at time.Time) { replayed++ },
		Digest:      func(job, env string, fresh int, at time.Time) { digests++ },
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if replayed != acceptedObs.Load() {
		t.Fatalf("store holds %d observations, want the %d the server acknowledged", replayed, acceptedObs.Load())
	}
	if digests == 0 {
		t.Fatal("drain wrote no digest marker despite pending observations")
	}
}

// TestServeShardedSmoke drives the real serve entrypoint in sharded
// mode: -shards 2 must answer the identical /v1 wire contract, report
// the cluster stats schema, expose the topology endpoint, keep each
// shard's WAL in its own subdirectory, and drain cleanly on SIGTERM.
func TestServeShardedSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-signal end-to-end test")
	}
	root := t.TempDir()
	modelsDir := filepath.Join(root, "models")
	dataDir := filepath.Join(root, "data")
	if err := os.MkdirAll(modelsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestModel(t, modelsDir)

	ready := make(chan string, 1)
	testHookServeReady = func(addr string) { ready <- addr }
	defer func() { testHookServeReady = nil }()
	served := make(chan error, 1)
	go func() {
		served <- runServe([]string{
			"-models", modelsDir,
			"-addr", "127.0.0.1:0",
			"-shards", "2",
			"-observe",
			"-data-dir", dataDir,
			"-fsync", "never",
			"-rate-limit", "0",
			"-drain-timeout", "10s",
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	// Predict answers the standard DTO through the router.
	pb, _ := json.Marshal(drainWire(4))
	resp, err := client.Post(base+"/v1/predict", "application/json", bytes.NewReader(pb))
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	var pr api.PredictResponse
	err = json.NewDecoder(resp.Body).Decode(&pr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || pr.Error != nil || pr.RuntimeSec <= 0 {
		t.Fatalf("predict status %d resp %+v (err %v)", resp.StatusCode, pr, err)
	}

	// Observes are accepted and routed to the key's owning shard.
	ob, _ := json.Marshal(api.ObserveRequest{PredictRequest: drainWire(4), RuntimeSec: 61})
	resp, err = client.Post(base+"/v1/observe", "application/json", bytes.NewReader(ob))
	if err != nil {
		t.Fatalf("observe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	// Stats report the versioned cluster schema with one block per shard.
	resp, err = client.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var st api.ClusterStats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.SchemaVersion != api.StatsSchemaVersion || len(st.Shards) != 2 {
		t.Fatalf("cluster stats schema %d with %d shards, want %d/2", st.SchemaVersion, len(st.Shards), api.StatsSchemaVersion)
	}
	if st.Replication == nil {
		t.Fatal("sharded serve reports no replication stats")
	}

	// The topology endpoint names both shards.
	resp, err = client.Get(base + "/v1/shards")
	if err != nil {
		t.Fatalf("shards: %v", err)
	}
	var topo api.TopologyResponse
	err = json.NewDecoder(resp.Body).Decode(&topo)
	resp.Body.Close()
	if err != nil || len(topo.Shards) != 2 {
		t.Fatalf("topology %+v (err %v)", topo, err)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("runServe after SIGTERM = %v, want nil (clean drain)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain within 30s of SIGTERM")
	}

	// Each shard sealed its own store subdirectory.
	for i := 0; i < 2; i++ {
		sub := filepath.Join(dataDir, "shard-"+strconv.Itoa(i))
		if fi, err := os.Stat(sub); err != nil || !fi.IsDir() {
			t.Fatalf("shard store %s missing after drain (err %v)", sub, err)
		}
		sst, err := store.Open(sub, store.Options{Fsync: store.FsyncNever})
		if err != nil {
			t.Fatalf("reopening %s: %v", sub, err)
		}
		if rb := sst.StoreStats().RepairedBytes; rb != 0 {
			sst.Close()
			t.Fatalf("shard %d reopened with %d repaired bytes, want 0 after a drained shutdown", i, rb)
		}
		sst.Close()
	}
}

// TestBenchAgainstServe smoke-tests the load harness end to end: a
// short bench sweep against a served model must complete, report
// goodput, and write the -out JSON.
func TestBenchAgainstServe(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end bench smoke")
	}
	root := t.TempDir()
	modelsDir := filepath.Join(root, "models")
	if err := os.MkdirAll(modelsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestModel(t, modelsDir)

	ready := make(chan string, 1)
	testHookServeReady = func(addr string) { ready <- addr }
	defer func() { testHookServeReady = nil }()
	served := make(chan error, 1)
	go func() {
		served <- runServe([]string{
			"-models", modelsDir,
			"-addr", "127.0.0.1:0",
			"-observe",
			"-rate-limit", "0",
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}

	outPath := filepath.Join(root, "bench.json")
	err := runBench([]string{
		"-url", "http://" + addr,
		"-job", "sort", "-env", "c3o",
		"-rates", "200", "-duration", "500ms",
		"-essential", "dataset_size_mb=10000",
		"-essential", "dataset_characteristics=uniform",
		"-essential", "job_parameters=--iterations 100",
		"-essential", "node_type=m4.xlarge",
		"-deadline-ms", "5000",
		"-out", outPath,
	})
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("reading bench output: %v", err)
	}
	var out struct {
		Runs []benchRun `json:"runs"`
	}
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatalf("decoding bench output: %v", err)
	}
	if len(out.Runs) != 1 {
		t.Fatalf("bench wrote %d runs, want 1", len(out.Runs))
	}
	r := out.Runs[0]
	if r.OK == 0 || r.GoodputRPS <= 0 {
		t.Fatalf("bench run recorded no goodput: %+v", r)
	}
	if r.Errors > 0 {
		t.Fatalf("bench run recorded %d errors against a healthy server: %+v", r.Errors, r)
	}
	// Shut the server down cleanly so the test binary exits quietly.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("runServe after SIGTERM = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain within 30s of SIGTERM")
	}
}
