package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
)

// benchRun is the JSON record of one offered-load level, written by
// -out. The bench section of BENCH_http.json holds these verbatim.
type benchRun struct {
	OfferedRPS   float64 `json:"offered_rps"`
	DurationSec  float64 `json:"duration_sec"`
	Sent         int64   `json:"sent"`
	Dropped      int64   `json:"dropped,omitempty"`
	OK           int64   `json:"ok"`
	RateLimited  int64   `json:"rate_limited"`
	Shed         int64   `json:"shed"`
	Deadline     int64   `json:"deadline"`
	Errors       int64   `json:"errors"`
	GoodputRPS   float64 `json:"goodput_rps"`
	OKP50Usec    float64 `json:"ok_p50_usec"`
	OKP99Usec    float64 `json:"ok_p99_usec"`
	OKP999Usec   float64 `json:"ok_p999_usec"`
	OKMaxUsec    float64 `json:"ok_max_usec"`
	ShedP99Usec  float64 `json:"shed_p99_usec"`
	ShedMaxUsec  float64 `json:"shed_max_usec"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func toBenchRun(r loadgen.Result) benchRun {
	return benchRun{
		OfferedRPS:  r.Offered,
		DurationSec: r.Elapsed.Seconds(),
		Sent:        r.Sent,
		Dropped:     r.Dropped,
		OK:          r.OK,
		RateLimited: r.RateLimited,
		Shed:        r.Shed,
		Deadline:    r.Deadline,
		Errors:      r.Errors,
		GoodputRPS:  r.Goodput(),
		OKP50Usec:   usec(r.OKLatency.Quantile(0.50)),
		OKP99Usec:   usec(r.OKLatency.Quantile(0.99)),
		OKP999Usec:  usec(r.OKLatency.Quantile(0.999)),
		OKMaxUsec:   usec(r.OKLatency.Max()),
		ShedP99Usec: usec(r.RejectLatency.Quantile(0.99)),
		ShedMaxUsec: usec(r.RejectLatency.Max()),
	}
}

// benchTarget builds the request bodies once and issues them per
// arrival: a weighted predict/observe/allocate mix against one model
// key, scale-outs cycled per sequence number so the result-cache hit
// ratio is controlled by how many distinct scale-outs are offered.
type benchTarget struct {
	client      *http.Client
	baseURL     string
	deadlineMS  int
	apiKeys     int
	predictCut  int // mix thresholds out of 100: seq%100 < predictCut -> predict
	observeCut  int // predictCut <= seq%100 < observeCut -> observe
	predictReqs [][]byte
	observeReqs [][]byte
	allocateReq []byte
}

func (t *benchTarget) issue(seq int) loadgen.Outcome {
	var path string
	var body []byte
	switch m := seq % 100; {
	case m < t.predictCut:
		path, body = "/v1/predict", t.predictReqs[seq%len(t.predictReqs)]
	case m < t.observeCut:
		path, body = "/v1/observe", t.observeReqs[seq%len(t.observeReqs)]
	default:
		path, body = "/v1/allocate", t.allocateReq
	}
	req, err := http.NewRequest(http.MethodPost, t.baseURL+path, bytes.NewReader(body))
	if err != nil {
		return loadgen.OutcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	if t.deadlineMS > 0 {
		req.Header.Set("X-Deadline-Ms", strconv.Itoa(t.deadlineMS))
	}
	if t.apiKeys > 0 {
		req.Header.Set("X-API-Key", "bench-"+strconv.Itoa(seq%t.apiKeys))
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return loadgen.OutcomeError
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		return loadgen.OutcomeOK
	case resp.StatusCode == http.StatusTooManyRequests:
		return loadgen.OutcomeRateLimited
	case resp.StatusCode == http.StatusServiceUnavailable:
		return loadgen.OutcomeShed
	case resp.StatusCode == http.StatusGatewayTimeout:
		return loadgen.OutcomeDeadline
	default:
		return loadgen.OutcomeError
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("rate %q must be a positive number", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("missing rates (e.g. -rates 100,500,2000)")
	}
	return out, nil
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	baseURL := fs.String("url", "", "base URL of a running bellamy serve instance (required, e.g. http://localhost:8080)")
	rates := fs.String("rates", "100", "comma-separated offered loads in req/s, each run for -duration (sweep them to map goodput vs offered load)")
	duration := fs.Duration("duration", 10*time.Second, "schedule length per offered-load level")
	job := fs.String("job", "", "job name of the target model (required)")
	env := fs.String("env", "", "environment name of the target model")
	scaleOuts := fs.String("scale-outs", "2,4,8,16", "scale-outs cycled across requests; more distinct values = lower result-cache hit ratio")
	essential := &propsFlag{}
	optional := &propsFlag{optional: true}
	fs.Var(essential, "essential", "essential property name=value (repeatable, in model order)")
	fs.Var(optional, "optional", "optional property name=value (repeatable)")
	predictPct := fs.Int("predict-pct", 90, "percentage of arrivals that POST /v1/predict")
	observePct := fs.Int("observe-pct", 8, "percentage of arrivals that POST /v1/observe")
	deadlineMS := fs.Int("deadline-ms", 0, "X-Deadline-Ms budget header on every request (0 = none)")
	apiKeys := fs.Int("api-keys", 0, "spread requests across this many X-API-Key identities (0 = none, all share the source address)")
	outstanding := fs.Int("max-outstanding", 4096, "client-side cap on in-flight requests")
	runtimeSec := fs.Float64("observe-runtime", 60, "runtime_sec reported by observe requests")
	outPath := fs.String("out", "", "write the per-level results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("bench: missing -url")
	}
	if *job == "" {
		return fmt.Errorf("bench: missing -job")
	}
	if *predictPct < 0 || *observePct < 0 || *predictPct+*observePct > 100 {
		return fmt.Errorf("bench: -predict-pct %d + -observe-pct %d must fit in 100 (the rest allocates)", *predictPct, *observePct)
	}
	levels, err := parseRates(*rates)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	xs, err := parseScaleOuts(*scaleOuts)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	props := func(ps *propsFlag) []propertyWire {
		out := make([]propertyWire, len(ps.props))
		for i, p := range ps.props {
			out[i] = propertyWire{Name: p.Name, Value: p.Value}
		}
		return out
	}
	t := &benchTarget{
		client: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        *outstanding,
				MaxIdleConnsPerHost: *outstanding,
			},
		},
		baseURL:    strings.TrimRight(*baseURL, "/"),
		deadlineMS: *deadlineMS,
		apiKeys:    *apiKeys,
		predictCut: *predictPct,
		observeCut: *predictPct + *observePct,
	}
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		minX, maxX = min(minX, x), max(maxX, x)
		p, _ := json.Marshal(predictWire{
			Job: *job, Env: *env, ScaleOut: x,
			Essential: props(essential), Optional: props(optional),
		})
		t.predictReqs = append(t.predictReqs, p)
		o, _ := json.Marshal(observeWire{
			predictWire: predictWire{Job: *job, Env: *env, ScaleOut: x,
				Essential: props(essential), Optional: props(optional)},
			RuntimeSec: *runtimeSec,
		})
		t.observeReqs = append(t.observeReqs, o)
	}
	t.allocateReq, _ = json.Marshal(allocateWire{
		Job: *job, Env: *env,
		Essential: props(essential), Optional: props(optional),
		MinScaleOut: minX, MaxScaleOut: maxX,
		DeadlineSec: 1e6, CostPerNodeHour: 1,
	})

	fmt.Printf("%10s %9s %9s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"offered", "goodput", "ok", "429", "503", "504", "err", "p50", "p99", "p999", "shed p99")
	var runs []benchRun
	for _, rate := range levels {
		res := loadgen.Run(loadgen.Config{
			Rate:           rate,
			Duration:       *duration,
			MaxOutstanding: *outstanding,
		}, t.issue)
		run := toBenchRun(res)
		runs = append(runs, run)
		fmt.Printf("%8.0f/s %7.0f/s %9d %8d %8d %8d %8d %8.0fµ %8.0fµ %8.0fµ %8.0fµ\n",
			run.OfferedRPS, run.GoodputRPS, run.OK, run.RateLimited, run.Shed, run.Deadline,
			run.Errors+run.Dropped, run.OKP50Usec, run.OKP99Usec, run.OKP999Usec, run.ShedP99Usec)
	}
	if *outPath != "" {
		blob, err := json.MarshalIndent(struct {
			Runs []benchRun `json:"runs"`
		}{runs}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: writing %s: %w", *outPath, err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}

// Wire shapes for the request bodies (mirrors internal/serve's JSON
// API; duplicated here because those types are unexported).
type propertyWire struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

type predictWire struct {
	Job       string         `json:"job"`
	Env       string         `json:"env"`
	ScaleOut  int            `json:"scale_out"`
	Essential []propertyWire `json:"essential"`
	Optional  []propertyWire `json:"optional,omitempty"`
}

type observeWire struct {
	predictWire
	RuntimeSec float64 `json:"runtime_sec"`
}

type allocateWire struct {
	Job             string         `json:"job"`
	Env             string         `json:"env"`
	Essential       []propertyWire `json:"essential"`
	Optional        []propertyWire `json:"optional,omitempty"`
	MinScaleOut     int            `json:"min_scale_out"`
	MaxScaleOut     int            `json:"max_scale_out"`
	DeadlineSec     float64        `json:"deadline_sec"`
	CostPerNodeHour float64        `json:"cost_per_node_hour"`
}
