package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/loadgen"
)

// benchRun is the JSON record of one offered-load level, written by
// -out. The bench section of BENCH_http.json holds these verbatim.
type benchRun struct {
	OfferedRPS  float64 `json:"offered_rps"`
	DurationSec float64 `json:"duration_sec"`
	Sent        int64   `json:"sent"`
	Dropped     int64   `json:"dropped,omitempty"`
	OK          int64   `json:"ok"`
	RateLimited int64   `json:"rate_limited"`
	Shed        int64   `json:"shed"`
	Deadline    int64   `json:"deadline"`
	Errors      int64   `json:"errors"`
	GoodputRPS  float64 `json:"goodput_rps"`
	OKP50Usec   float64 `json:"ok_p50_usec"`
	OKP99Usec   float64 `json:"ok_p99_usec"`
	OKP999Usec  float64 `json:"ok_p999_usec"`
	OKMaxUsec   float64 `json:"ok_max_usec"`
	ShedP99Usec float64 `json:"shed_p99_usec"`
	ShedMaxUsec float64 `json:"shed_max_usec"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func toBenchRun(r loadgen.Result) benchRun {
	return benchRun{
		OfferedRPS:  r.Offered,
		DurationSec: r.Elapsed.Seconds(),
		Sent:        r.Sent,
		Dropped:     r.Dropped,
		OK:          r.OK,
		RateLimited: r.RateLimited,
		Shed:        r.Shed,
		Deadline:    r.Deadline,
		Errors:      r.Errors,
		GoodputRPS:  r.Goodput(),
		OKP50Usec:   usec(r.OKLatency.Quantile(0.50)),
		OKP99Usec:   usec(r.OKLatency.Quantile(0.99)),
		OKP999Usec:  usec(r.OKLatency.Quantile(0.999)),
		OKMaxUsec:   usec(r.OKLatency.Max()),
		ShedP99Usec: usec(r.RejectLatency.Quantile(0.99)),
		ShedMaxUsec: usec(r.RejectLatency.Max()),
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.ParseFloat(part, 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("rate %q must be a positive number", part)
		}
		out = append(out, r)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("missing rates (e.g. -rates 100,500,2000)")
	}
	return out, nil
}

// apiProps converts collected -essential / -optional flags to the
// canonical wire form.
func apiProps(ps *propsFlag) []api.Property {
	out := make([]api.Property, len(ps.props))
	for i, p := range ps.props {
		out[i] = api.Property{Name: p.Name, Value: p.Value}
	}
	return out
}

func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	baseURL := fs.String("url", "", "base URL of a running bellamy serve instance (required, e.g. http://localhost:8080)")
	rates := fs.String("rates", "100", "comma-separated offered loads in req/s, each run for -duration (sweep them to map goodput vs offered load)")
	duration := fs.Duration("duration", 10*time.Second, "schedule length per offered-load level")
	job := fs.String("job", "", "job name of the target model (required)")
	env := fs.String("env", "", "environment name of the target model")
	scaleOuts := fs.String("scale-outs", "2,4,8,16", "scale-outs cycled across requests; more distinct values = lower result-cache hit ratio")
	essential := &propsFlag{}
	optional := &propsFlag{optional: true}
	fs.Var(essential, "essential", "essential property name=value (repeatable, in model order)")
	fs.Var(optional, "optional", "optional property name=value (repeatable)")
	predictPct := fs.Int("predict-pct", 90, "percentage of arrivals that POST /v1/predict")
	observePct := fs.Int("observe-pct", 8, "percentage of arrivals that POST /v1/observe")
	deadlineMS := fs.Int("deadline-ms", 0, "X-Deadline-Ms budget header on every request (0 = none)")
	apiKeys := fs.Int("api-keys", 0, "spread requests across this many X-API-Key identities (0 = none, all share the source address)")
	outstanding := fs.Int("max-outstanding", 4096, "client-side cap on in-flight requests")
	runtimeSec := fs.Float64("observe-runtime", 60, "runtime_sec reported by observe requests")
	outPath := fs.String("out", "", "write the per-level results as JSON to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *baseURL == "" {
		return fmt.Errorf("bench: missing -url")
	}
	if *job == "" {
		return fmt.Errorf("bench: missing -job")
	}
	levels, err := parseRates(*rates)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	xs, err := parseScaleOuts(*scaleOuts)
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	t, err := loadgen.NewHTTPTarget(loadgen.HTTPTargetConfig{
		BaseURL: *baseURL,
		Client: &http.Client{
			Timeout: 2 * time.Minute,
			Transport: &http.Transport{
				MaxIdleConns:        *outstanding,
				MaxIdleConnsPerHost: *outstanding,
			},
		},
		Job: *job, Env: *env,
		ScaleOuts: xs,
		Essential: apiProps(essential),
		Optional:  apiProps(optional),

		PredictPct: *predictPct, ObservePct: *observePct,
		ObserveRuntimeSec: *runtimeSec,
		DeadlineMS:        *deadlineMS,
		APIKeys:           *apiKeys,
	})
	if err != nil {
		return fmt.Errorf("bench: %w", err)
	}

	fmt.Printf("%10s %9s %9s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"offered", "goodput", "ok", "429", "503", "504", "err", "p50", "p99", "p999", "shed p99")
	var runs []benchRun
	for _, rate := range levels {
		res := loadgen.Run(loadgen.Config{
			Rate:           rate,
			Duration:       *duration,
			MaxOutstanding: *outstanding,
		}, t.Issue)
		run := toBenchRun(res)
		runs = append(runs, run)
		fmt.Printf("%8.0f/s %7.0f/s %9d %8d %8d %8d %8d %8.0fµ %8.0fµ %8.0fµ %8.0fµ\n",
			run.OfferedRPS, run.GoodputRPS, run.OK, run.RateLimited, run.Shed, run.Deadline,
			run.Errors+run.Dropped, run.OKP50Usec, run.OKP99Usec, run.OKP999Usec, run.ShedP99Usec)
	}
	if *outPath != "" {
		blob, err := json.MarshalIndent(struct {
			Runs []benchRun `json:"runs"`
		}{runs}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("bench: writing %s: %w", *outPath, err)
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}
