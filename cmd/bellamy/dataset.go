package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func runDataset(args []string) error {
	fs := flag.NewFlagSet("dataset", flag.ExitOnError)
	env := fs.String("env", "c3o", "environment to simulate: c3o or bell")
	seed := fs.Int64("seed", 1, "simulation seed")
	noise := fs.Float64("noise", 0, "run-to-run noise sigma (0 = default 0.05)")
	repeats := fs.Int("repeats", 0, "repeats per scale-out (0 = paper defaults)")
	out := fs.String("out", "", "output CSV path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := dataset.SimConfig{Seed: *seed, NoiseSigma: *noise, Repeats: *repeats}
	var ds *dataset.Dataset
	switch *env {
	case "c3o":
		ds = dataset.GenerateC3O(cfg)
	case "bell":
		ds = dataset.GenerateBell(cfg)
	default:
		return fmt.Errorf("dataset: unknown -env %q (want c3o or bell)", *env)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("dataset: %w", err)
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, ds); err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "wrote %d executions to %s\n", ds.Len(), *out)
	}
	return nil
}
