package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/api"
)

// TestServeObservabilitySmoke drives the real serve entrypoint with
// the full observability surface switched on: a traced request
// against a sharded deployment must echo its X-Trace-Id, show up in
// GET /v1/debug/slow, and be visible on a parse-clean /metrics scrape
// carrying per-shard labels and router series, with pprof mounted
// behind -pprof — all through the same flags an operator would use.
func TestServeObservabilitySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-process end-to-end test")
	}
	root := t.TempDir()
	modelsDir := filepath.Join(root, "models")
	if err := os.MkdirAll(modelsDir, 0o755); err != nil {
		t.Fatal(err)
	}
	writeTestModel(t, modelsDir)

	ready := make(chan string, 1)
	testHookServeReady = func(addr string) { ready <- addr }
	defer func() { testHookServeReady = nil }()
	served := make(chan error, 1)
	go func() {
		served <- runServe([]string{
			"-models", modelsDir,
			"-addr", "127.0.0.1:0",
			"-shards", "2",
			"-rate-limit", "0",
			"-pprof",
			"-trace-sample", "1",
			"-log-format", "json",
			"-log-level", "warn",
			"-drain-timeout", "10s",
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-served:
		t.Fatalf("serve exited before ready: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("serve never became ready")
	}
	base := "http://" + addr
	client := &http.Client{Timeout: 30 * time.Second}

	// A traced predict: the client-supplied ID comes back on the
	// response header.
	const traceID = "smoke-trace-0001"
	pb, _ := json.Marshal(drainWire(4))
	req, err := http.NewRequest(http.MethodPost, base+"/v1/predict", bytes.NewReader(pb))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.TraceIDHeader, traceID)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("predict: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(api.TraceIDHeader); got != traceID {
		t.Fatalf("echoed trace ID %q, want %q", got, traceID)
	}

	// The trace is retained by the slow ring with named stages.
	resp, err = client.Get(base + "/v1/debug/slow")
	if err != nil {
		t.Fatalf("debug/slow: %v", err)
	}
	var slow api.SlowTracesResponse
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode slow traces: %v", err)
	}
	found := false
	for _, tr := range slow.Traces {
		if tr.TraceID == traceID {
			found = true
			if len(tr.Spans) < 6 {
				t.Fatalf("trace retained with %d spans, want >= 6: %+v", len(tr.Spans), tr.Spans)
			}
		}
	}
	if !found {
		t.Fatalf("trace %q not in /v1/debug/slow (%d traces)", traceID, len(slow.Traces))
	}

	// /metrics carries per-shard labels, router series, runtime gauges,
	// and tracer accounting from the one request above.
	resp, err = client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		`bellamy_predict_requests_total{shard="0"}`,
		`bellamy_predict_requests_total{shard="1"}`,
		"bellamy_router_requests_total 1",
		`bellamy_shard_up{shard="0"} 1`,
		"bellamy_traces_sampled_total 1",
		"go_goroutines",
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, raw)
		}
	}

	// pprof is mounted behind -pprof on the same listener.
	resp, err = client.Get(base + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("pprof: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", resp.StatusCode)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("sending SIGTERM: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("runServe after SIGTERM = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain within 30s of SIGTERM")
	}
}
