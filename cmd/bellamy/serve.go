package main

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/serve"
	"repro/internal/store"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsDir := fs.String("models", "", "directory of <job>_<env>.model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	modelCap := fs.Int("model-cache", serve.DefaultModelCap, "max resident models")
	resultCap := fs.Int("result-cache", serve.DefaultResultCap, "max memoized prediction results")
	workers := fs.Int("workers", 0, "per-batch fan-out workers (0 = GOMAXPROCS)")
	observe := fs.Bool("observe", false, "accept runtime observations on POST /v1/observe and fine-tune served models online")
	ftInterval := fs.Duration("finetune-interval", lifecycle.DefaultInterval, "background fine-tune scan period")
	ftMinSamples := fs.Int("finetune-min-samples", lifecycle.DefaultMinSamples, "fresh observations per model that trigger a fine-tune")
	ftWorkers := fs.Int("finetune-workers", 0, "concurrent fine-tunes (0 = NumCPU/4)")
	ftBuffer := fs.Int("observe-buffer", lifecycle.DefaultBufferCap, "per-model observation ring capacity")
	ftMaxKeys := fs.Int("observe-max-models", lifecycle.DefaultMaxKeys, "max distinct models holding observation buffers")
	f64Serve := fs.Bool("f64-serve", false, "serve predictions in full float64 instead of the quantized float32 inference path")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + compacted segments + model checkpoints); empty disables durability")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always (every append), interval (batched), never (OS page cache)")
	compactEvery := fs.Duration("compact-interval", store.DefaultCompactInterval, "period between WAL compactions into indexed segments")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelsDir == "" {
		return fmt.Errorf("serve: missing -models directory")
	}

	svc := serve.NewService(serve.DirLoader(*modelsDir), serve.Options{
		ModelCap:       *modelCap,
		ResultCap:      *resultCap,
		Workers:        *workers,
		Float64Serving: *f64Serve,
	})
	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		st, err = store.Open(*dataDir, store.Options{
			Fsync:           policy,
			CompactInterval: *compactEvery,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		// Checkpointed model versions take priority over the base model
		// files, so a restarted node serves the exact fine-tuned versions
		// (and version numbers) it crashed with.
		svc.Registry().SetVersionedLoader(serve.CheckpointLoader(serve.DirLoader(*modelsDir), st))
		svc.AttachStore(st)
	}
	if *observe {
		cfg := lifecycle.Config{
			MinSamples: *ftMinSamples,
			Interval:   *ftInterval,
			Workers:    *ftWorkers,
			BufferCap:  *ftBuffer,
			MaxKeys:    *ftMaxKeys,
		}
		if st != nil {
			cfg.Log = st
			cfg.Checkpoint = st
		}
		ctl := lifecycle.New(svc.Registry(), cfg)
		ctl.OnSwap(func(key serve.ModelKey, version uint64) {
			fmt.Printf("lifecycle: %s hot-swapped to v%d\n", key, version)
		})
		// AttachObserver also subscribes the result-cache invalidation,
		// so memoized predictions never outlive a swapped model.
		svc.AttachObserver(ctl)
		if st != nil {
			// Replay the durable history into the observation rings before
			// accepting traffic: samples regain their freshness, digest
			// markers suppress re-fine-tuning of already-checkpointed work.
			err := st.Replay(store.ReplayHandler{
				Observation: func(job, env string, s core.Sample, at time.Time) {
					ctl.Restore(serve.ModelKey{Job: job, Env: env}, s, at)
				},
				Digest: func(job, env string, fresh int, at time.Time) {
					ctl.RestoreDigest(serve.ModelKey{Job: job, Env: env})
				},
			})
			if err != nil {
				// A corrupt sealed segment stops replay at its clean
				// prefix; serving continues on what was recovered.
				fmt.Printf("store: replay stopped early: %v\n", err)
			}
			rs := st.StoreStats()
			fmt.Printf("store: recovered %d observations and %d digests from %s (repaired %d torn bytes)\n",
				rs.ReplayedObservations, rs.ReplayedDigests, *dataDir, rs.RepairedBytes)
		}
		ctl.Start()
		defer ctl.Stop()
		fmt.Printf("online fine-tuning on: every %v, %d fresh samples per model trigger a refresh\n",
			*ftInterval, *ftMinSamples)
	}
	if st != nil {
		st.Start()
		fmt.Printf("durable store on: %s (fsync=%s, compaction every %v)\n", *dataDir, *fsyncMode, *compactEvery)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving models from %s on %s\n", *modelsDir, *addr)
	fmt.Println("endpoints: POST /v1/predict, POST /v1/predict/batch, POST /v1/allocate, POST /v1/observe, GET /v1/stats, GET /healthz")
	return srv.ListenAndServe()
}
