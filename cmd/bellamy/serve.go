package main

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serve"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsDir := fs.String("models", "", "directory of <job>_<env>.model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	modelCap := fs.Int("model-cache", serve.DefaultModelCap, "max resident models")
	resultCap := fs.Int("result-cache", serve.DefaultResultCap, "max memoized prediction results")
	workers := fs.Int("workers", 0, "per-batch fan-out workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelsDir == "" {
		return fmt.Errorf("serve: missing -models directory")
	}

	svc := serve.NewService(serve.DirLoader(*modelsDir), serve.Options{
		ModelCap:  *modelCap,
		ResultCap: *resultCap,
		Workers:   *workers,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving models from %s on %s\n", *modelsDir, *addr)
	fmt.Println("endpoints: POST /v1/predict, POST /v1/predict/batch, GET /v1/stats, GET /healthz")
	return srv.ListenAndServe()
}
