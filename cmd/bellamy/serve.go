package main

import (
	"flag"
	"fmt"
	"net/http"
	"time"

	"repro/internal/lifecycle"
	"repro/internal/serve"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsDir := fs.String("models", "", "directory of <job>_<env>.model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	modelCap := fs.Int("model-cache", serve.DefaultModelCap, "max resident models")
	resultCap := fs.Int("result-cache", serve.DefaultResultCap, "max memoized prediction results")
	workers := fs.Int("workers", 0, "per-batch fan-out workers (0 = GOMAXPROCS)")
	observe := fs.Bool("observe", false, "accept runtime observations on POST /v1/observe and fine-tune served models online")
	ftInterval := fs.Duration("finetune-interval", lifecycle.DefaultInterval, "background fine-tune scan period")
	ftMinSamples := fs.Int("finetune-min-samples", lifecycle.DefaultMinSamples, "fresh observations per model that trigger a fine-tune")
	ftWorkers := fs.Int("finetune-workers", 0, "concurrent fine-tunes (0 = NumCPU/4)")
	ftBuffer := fs.Int("observe-buffer", lifecycle.DefaultBufferCap, "per-model observation ring capacity")
	ftMaxKeys := fs.Int("observe-max-models", lifecycle.DefaultMaxKeys, "max distinct models holding observation buffers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelsDir == "" {
		return fmt.Errorf("serve: missing -models directory")
	}

	svc := serve.NewService(serve.DirLoader(*modelsDir), serve.Options{
		ModelCap:  *modelCap,
		ResultCap: *resultCap,
		Workers:   *workers,
	})
	if *observe {
		ctl := lifecycle.New(svc.Registry(), lifecycle.Config{
			MinSamples: *ftMinSamples,
			Interval:   *ftInterval,
			Workers:    *ftWorkers,
			BufferCap:  *ftBuffer,
			MaxKeys:    *ftMaxKeys,
		})
		ctl.OnSwap(func(key serve.ModelKey, version uint64) {
			fmt.Printf("lifecycle: %s hot-swapped to v%d\n", key, version)
		})
		// AttachObserver also subscribes the result-cache invalidation,
		// so memoized predictions never outlive a swapped model.
		svc.AttachObserver(ctl)
		ctl.Start()
		defer ctl.Stop()
		fmt.Printf("online fine-tuning on: every %v, %d fresh samples per model trigger a refresh\n",
			*ftInterval, *ftMinSamples)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("serving models from %s on %s\n", *modelsDir, *addr)
	fmt.Println("endpoints: POST /v1/predict, POST /v1/predict/batch, POST /v1/allocate, POST /v1/observe, GET /v1/stats, GET /healthz")
	return srv.ListenAndServe()
}
