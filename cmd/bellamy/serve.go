package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/loadctl"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/store"
)

// testHookServeReady, when set, receives the bound listen address once
// the server is accepting connections. Tests use it to drive a real
// serve process (with -addr :0) through its SIGTERM drain path.
var testHookServeReady func(addr string)

// shardRuntime bundles one shard's serving stack: the service, its
// durable store (nil without -data-dir), and its lifecycle controller
// (nil without -observe). A single-shard deployment is one of these;
// -shards N builds N and routes between them.
type shardRuntime struct {
	svc *serve.Service
	st  *store.Store
	ctl *lifecycle.Controller
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsDir := fs.String("models", "", "directory of <job>_<env>.model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	shards := fs.Int("shards", 1, "in-process shard count; >1 partitions (job, env) keys over a consistent-hash ring, fans batches out per shard, and replicates hot-swapped models between shards")
	modelCap := fs.Int("model-cache", serve.DefaultModelCap, "max resident models (per shard)")
	resultCap := fs.Int("result-cache", serve.DefaultResultCap, "max memoized prediction results (per shard)")
	workers := fs.Int("workers", 0, "per-batch fan-out workers (0 = GOMAXPROCS)")
	observe := fs.Bool("observe", false, "accept runtime observations on POST /v1/observe and fine-tune served models online")
	ftInterval := fs.Duration("finetune-interval", lifecycle.DefaultInterval, "background fine-tune scan period")
	ftMinSamples := fs.Int("finetune-min-samples", lifecycle.DefaultMinSamples, "fresh observations per model that trigger a fine-tune")
	ftWorkers := fs.Int("finetune-workers", 0, "concurrent fine-tunes (0 = NumCPU/4)")
	ftBuffer := fs.Int("observe-buffer", lifecycle.DefaultBufferCap, "per-model observation ring capacity")
	ftMaxKeys := fs.Int("observe-max-models", lifecycle.DefaultMaxKeys, "max distinct models holding observation buffers")
	f64Serve := fs.Bool("f64-serve", false, "serve predictions in full float64 instead of the quantized float32 inference path")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + compacted segments + model checkpoints); sharded serving uses <dir>/shard-<i> per shard; empty disables durability")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always (every append), interval (batched), never (OS page cache)")
	compactEvery := fs.Duration("compact-interval", store.DefaultCompactInterval, "period between WAL compactions into indexed segments")
	rate := fs.Float64("rate-limit", loadctl.DefaultRate, "per-client request rate limit in req/s (0 disables rate limiting)")
	rateBurst := fs.Float64("rate-burst", 0, "per-client burst depth (0 = 2x rate)")
	maxClients := fs.Int("max-clients", loadctl.DefaultMaxClients, "max tracked rate-limit clients (LRU beyond)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently admitted requests per shard (0 = 4x GOMAXPROCS, negative disables the admission gate)")
	maxQueue := fs.Int("max-queue", loadctl.DefaultMaxQueue, "admission queue depth; heavy requests get half of it")
	maxWait := fs.Duration("max-wait", loadctl.DefaultMaxWait, "max time a request queues for admission before it is shed")
	maxDeadline := fs.Duration("max-deadline", serve.DefaultMaxDeadline, "cap on client-supplied X-Deadline-Ms budgets")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on SIGTERM/SIGINT")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiling under /debug/pprof/")
	traceSample := fs.Int("trace-sample", 0, "trace 1 in N requests without an X-Trace-Id header (0 = default 1 in 64); header-carrying requests are always traced")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, error")
	logFormat := fs.String("log-format", "text", "structured log encoding: text or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelsDir == "" {
		return fmt.Errorf("serve: missing -models directory")
	}
	if *shards < 1 {
		return fmt.Errorf("serve: -shards %d must be at least 1", *shards)
	}
	sharded := *shards > 1

	// Structured logging: one root logger; per-shard components log
	// through a child carrying the shard field, so a sharded deployment's
	// interleaved output stays attributable.
	logger := obs.NewLogger(os.Stdout, *logLevel, *logFormat)
	shardLog := func(i int) *slog.Logger {
		if !sharded {
			return logger
		}
		return logger.With("shard", i)
	}

	// label prefixes per-shard strings in error values; in a
	// single-shard deployment it is empty.
	label := func(i int) string {
		if !sharded {
			return ""
		}
		return fmt.Sprintf("shard %d: ", i)
	}

	// buildNode assembles one shard's stack without starting its
	// background work; starting happens after the replication hooks are
	// registered, so no install can slip past the broadcast.
	buildNode := func(i int) (*shardRuntime, error) {
		n := &shardRuntime{}
		n.svc = serve.NewService(serve.DirLoader(*modelsDir), serve.Options{
			ModelCap:       *modelCap,
			ResultCap:      *resultCap,
			Workers:        *workers,
			Float64Serving: *f64Serve,
		})
		dir := *dataDir
		if dir != "" && sharded {
			// Each shard owns a disjoint key range, so it gets a disjoint
			// store: WALs never interleave and a shard replays exactly the
			// observations of the models it serves.
			dir = filepath.Join(dir, fmt.Sprintf("shard-%d", i))
		}
		if dir != "" {
			policy, err := store.ParseFsyncPolicy(*fsyncMode)
			if err != nil {
				return nil, err
			}
			n.st, err = store.Open(dir, store.Options{
				Fsync:           policy,
				CompactInterval: *compactEvery,
				Logger:          shardLog(i),
			})
			if err != nil {
				return nil, err
			}
			// Checkpointed model versions take priority over the base model
			// files, so a restarted node serves the exact fine-tuned versions
			// (and version numbers) it crashed with.
			n.svc.Registry().SetVersionedLoader(serve.CheckpointLoader(serve.DirLoader(*modelsDir), n.st))
			n.svc.AttachStore(n.st)
		}
		if *observe {
			cfg := lifecycle.Config{
				MinSamples: *ftMinSamples,
				Interval:   *ftInterval,
				Workers:    *ftWorkers,
				BufferCap:  *ftBuffer,
				MaxKeys:    *ftMaxKeys,
			}
			if n.st != nil {
				cfg.Log = n.st
				cfg.Checkpoint = n.st
			}
			n.ctl = lifecycle.New(n.svc.Registry(), cfg)
			n.ctl.OnSwap(func(key serve.ModelKey, version uint64) {
				shardLog(i).Info("lifecycle: model hot-swapped",
					"job", key.Job, "env", key.Env, "version", version)
			})
			// AttachObserver also subscribes the result-cache invalidation,
			// so memoized predictions never outlive a swapped model.
			n.svc.AttachObserver(n.ctl)
			if n.st != nil {
				// Replay the durable history into the observation rings before
				// accepting traffic: samples regain their freshness, digest
				// markers suppress re-fine-tuning of already-checkpointed work.
				err := n.st.Replay(store.ReplayHandler{
					Observation: func(job, env string, s core.Sample, at time.Time) {
						n.ctl.Restore(serve.ModelKey{Job: job, Env: env}, s, at)
					},
					Digest: func(job, env string, fresh int, at time.Time) {
						n.ctl.RestoreDigest(serve.ModelKey{Job: job, Env: env})
					},
				})
				if err != nil {
					// A corrupt sealed segment stops replay at its clean
					// prefix; serving continues on what was recovered.
					shardLog(i).Warn("store: replay stopped early", "error", err)
				}
				rs := n.st.StoreStats()
				shardLog(i).Info("store: recovered durable history",
					"observations", rs.ReplayedObservations, "digests", rs.ReplayedDigests,
					"dir", dir, "repaired_bytes", rs.RepairedBytes)
			}
		}
		return n, nil
	}

	nodes := make([]*shardRuntime, *shards)
	for i := range nodes {
		n, err := buildNode(i)
		if err != nil {
			return err
		}
		nodes[i] = n
		if n.st != nil {
			defer n.st.Close()
		}
	}

	var limiter *loadctl.Limiter
	if *rate > 0 {
		limiter = loadctl.NewLimiter(loadctl.LimiterConfig{
			Rate:       *rate,
			Burst:      *rateBurst,
			MaxClients: *maxClients,
		})
	}
	gateFor := func() *loadctl.Gate {
		if *maxInFlight < 0 {
			return nil
		}
		return loadctl.NewGate(loadctl.GateConfig{
			MaxInFlight: *maxInFlight,
			MaxQueue:    *maxQueue,
			MaxWait:     *maxWait,
		})
	}

	// Assemble the handler: a cluster router over the shards, or the
	// plain single-instance surface (identical wire contract).
	var handler http.Handler
	var cluster *shard.Cluster
	if sharded {
		cfgs := make([]shard.NodeConfig, len(nodes))
		for i, n := range nodes {
			cfgs[i] = shard.NodeConfig{Service: n.svc, Gate: gateFor()}
		}
		var err error
		cluster, err = shard.New(cfgs, shard.Options{
			Limiter:     limiter,
			MaxDeadline: *maxDeadline,
		})
		if err != nil {
			return err
		}
		cluster.EnableReplication()
		defer cluster.CloseReplication()
		if *observe {
			// A fine-tune installed on any shard is broadcast to every
			// peer, so each shard answers from the latest generation no
			// matter which shard's observations triggered the refresh.
			for i, n := range nodes {
				from := i
				n.ctl.OnInstall(func(key serve.ModelKey, version uint64, blob []byte) {
					cluster.Broadcast(from, key, version, blob)
				})
			}
		}
		handler = cluster.Handler()
	} else {
		lc := serve.LoadControl{
			Limiter:     limiter,
			Gate:        gateFor(),
			MaxDeadline: *maxDeadline,
		}
		if lc.Limiter != nil || lc.Gate != nil {
			nodes[0].svc.AttachLoadControl(lc)
		}
		handler = nodes[0].svc.Handler()
	}

	// Observability: one metrics registry and one tracer span the whole
	// process. Sharded deployments register per-shard series under a
	// {shard="i"} label; the router's own counters are unlabelled.
	registry := obs.NewRegistry()
	obs.RegisterRuntimeMetrics(registry)
	tracer := obs.NewTracer(obs.TracerOptions{SampleEvery: *traceSample})
	tracer.RegisterMetrics(registry, nil)
	o := &serve.Observability{Metrics: registry, Tracer: tracer, Log: logger}
	if sharded {
		cluster.AttachObs(o)
		for i, n := range nodes {
			n.svc.AttachObs(o, obs.Labels{"shard": strconv.Itoa(i)})
		}
	} else {
		nodes[0].svc.AttachObs(o, nil)
	}

	if *pprofOn {
		// pprof mounts on an outer mux so the serving surface itself
		// stays unaware of it; everything else falls through unchanged.
		outer := http.NewServeMux()
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
		outer.Handle("/", handler)
		handler = outer
	}

	if limiter != nil || *maxInFlight >= 0 {
		logger.Info("load control on",
			"rate_per_client", *rate, "max_inflight", *maxInFlight,
			"max_queue", *maxQueue, "heavy_queue", max(*maxQueue/2, 1), "max_wait", *maxWait)
	}

	// Start the background machinery only after every hook is wired.
	for i, n := range nodes {
		if n.ctl != nil {
			n.ctl.Start()
			defer n.ctl.Stop()
		}
		if n.st != nil {
			n.st.Start()
			shardLog(i).Info("durable store on", "fsync", *fsyncMode, "compact_interval", *compactEvery)
		}
	}
	if *observe {
		logger.Info("online fine-tuning on",
			"interval", *ftInterval, "min_samples", *ftMinSamples)
	}

	srv := &http.Server{
		Handler: handler,
		// Full-request read and write bounds (not just headers): a
		// slow-loris client trickling its body, or one never draining the
		// response, is cut off instead of pinning a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if sharded {
		logger.Info("serving models", "dir", *modelsDir, "addr", ln.Addr().String(), "shards", *shards, "pprof", *pprofOn)
		logger.Info("endpoints: POST /v1/predict, POST /v1/predict/batch, POST /v1/allocate, POST /v1/observe, GET /v1/stats, GET /v1/shards, GET /metrics, GET /v1/debug/slow, GET /healthz")
	} else {
		logger.Info("serving models", "dir", *modelsDir, "addr", ln.Addr().String(), "pprof", *pprofOn)
		logger.Info("endpoints: POST /v1/predict, POST /v1/predict/batch, POST /v1/allocate, POST /v1/observe, GET /v1/stats, GET /metrics, GET /v1/debug/slow, GET /healthz")
	}
	if testHookServeReady != nil {
		testHookServeReady(ln.Addr().String())
	}

	// Serve until SIGTERM/SIGINT, then drain: mark not-ready so load
	// balancers stop sending work, let in-flight requests finish, digest
	// pending observations into a final checkpoint, and seal the WAL.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("draining on signal", "signal", sig.String(), "timeout", *drainTimeout)
	}
	if cluster != nil {
		cluster.SetDraining(true)
	} else {
		nodes[0].svc.SetDraining(true)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Stragglers past the timeout are abandoned, but everything
		// below still runs: the WAL seal must happen regardless.
		logger.Warn("drain: shutdown incomplete", "error", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("drain: server error", "error", err)
	}
	for i, n := range nodes {
		if n.ctl != nil {
			if nd := n.ctl.Drain(); nd > 0 {
				shardLog(i).Info("drain: digested pending observations", "model_versions", nd)
			}
		}
	}
	if cluster != nil {
		// Final fine-tunes above were broadcast; tear the mesh down
		// before sealing so no replicator writes into a closing store.
		cluster.CloseReplication()
	}
	for i, n := range nodes {
		if n.st != nil {
			if err := n.st.Close(); err != nil {
				return fmt.Errorf("drain: closing %sstore: %w", label(i), err)
			}
			shardLog(i).Info("drain: store sealed")
		}
	}
	logger.Info("drain: complete")
	return nil
}
