package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/lifecycle"
	"repro/internal/loadctl"
	"repro/internal/serve"
	"repro/internal/store"
)

// testHookServeReady, when set, receives the bound listen address once
// the server is accepting connections. Tests use it to drive a real
// serve process (with -addr :0) through its SIGTERM drain path.
var testHookServeReady func(addr string)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	modelsDir := fs.String("models", "", "directory of <job>_<env>.model files (required)")
	addr := fs.String("addr", ":8080", "listen address")
	modelCap := fs.Int("model-cache", serve.DefaultModelCap, "max resident models")
	resultCap := fs.Int("result-cache", serve.DefaultResultCap, "max memoized prediction results")
	workers := fs.Int("workers", 0, "per-batch fan-out workers (0 = GOMAXPROCS)")
	observe := fs.Bool("observe", false, "accept runtime observations on POST /v1/observe and fine-tune served models online")
	ftInterval := fs.Duration("finetune-interval", lifecycle.DefaultInterval, "background fine-tune scan period")
	ftMinSamples := fs.Int("finetune-min-samples", lifecycle.DefaultMinSamples, "fresh observations per model that trigger a fine-tune")
	ftWorkers := fs.Int("finetune-workers", 0, "concurrent fine-tunes (0 = NumCPU/4)")
	ftBuffer := fs.Int("observe-buffer", lifecycle.DefaultBufferCap, "per-model observation ring capacity")
	ftMaxKeys := fs.Int("observe-max-models", lifecycle.DefaultMaxKeys, "max distinct models holding observation buffers")
	f64Serve := fs.Bool("f64-serve", false, "serve predictions in full float64 instead of the quantized float32 inference path")
	dataDir := fs.String("data-dir", "", "durable store directory (WAL + compacted segments + model checkpoints); empty disables durability")
	fsyncMode := fs.String("fsync", "always", "WAL durability: always (every append), interval (batched), never (OS page cache)")
	compactEvery := fs.Duration("compact-interval", store.DefaultCompactInterval, "period between WAL compactions into indexed segments")
	rate := fs.Float64("rate-limit", loadctl.DefaultRate, "per-client request rate limit in req/s (0 disables rate limiting)")
	rateBurst := fs.Float64("rate-burst", 0, "per-client burst depth (0 = 2x rate)")
	maxClients := fs.Int("max-clients", loadctl.DefaultMaxClients, "max tracked rate-limit clients (LRU beyond)")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrently admitted requests (0 = 4x GOMAXPROCS, negative disables the admission gate)")
	maxQueue := fs.Int("max-queue", loadctl.DefaultMaxQueue, "admission queue depth; heavy requests get half of it")
	maxWait := fs.Duration("max-wait", loadctl.DefaultMaxWait, "max time a request queues for admission before it is shed")
	maxDeadline := fs.Duration("max-deadline", serve.DefaultMaxDeadline, "cap on client-supplied X-Deadline-Ms budgets")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelsDir == "" {
		return fmt.Errorf("serve: missing -models directory")
	}

	svc := serve.NewService(serve.DirLoader(*modelsDir), serve.Options{
		ModelCap:       *modelCap,
		ResultCap:      *resultCap,
		Workers:        *workers,
		Float64Serving: *f64Serve,
	})
	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsyncMode)
		if err != nil {
			return err
		}
		st, err = store.Open(*dataDir, store.Options{
			Fsync:           policy,
			CompactInterval: *compactEvery,
		})
		if err != nil {
			return err
		}
		defer st.Close()
		// Checkpointed model versions take priority over the base model
		// files, so a restarted node serves the exact fine-tuned versions
		// (and version numbers) it crashed with.
		svc.Registry().SetVersionedLoader(serve.CheckpointLoader(serve.DirLoader(*modelsDir), st))
		svc.AttachStore(st)
	}
	var ctl *lifecycle.Controller
	if *observe {
		cfg := lifecycle.Config{
			MinSamples: *ftMinSamples,
			Interval:   *ftInterval,
			Workers:    *ftWorkers,
			BufferCap:  *ftBuffer,
			MaxKeys:    *ftMaxKeys,
		}
		if st != nil {
			cfg.Log = st
			cfg.Checkpoint = st
		}
		ctl = lifecycle.New(svc.Registry(), cfg)
		ctl.OnSwap(func(key serve.ModelKey, version uint64) {
			fmt.Printf("lifecycle: %s hot-swapped to v%d\n", key, version)
		})
		// AttachObserver also subscribes the result-cache invalidation,
		// so memoized predictions never outlive a swapped model.
		svc.AttachObserver(ctl)
		if st != nil {
			// Replay the durable history into the observation rings before
			// accepting traffic: samples regain their freshness, digest
			// markers suppress re-fine-tuning of already-checkpointed work.
			err := st.Replay(store.ReplayHandler{
				Observation: func(job, env string, s core.Sample, at time.Time) {
					ctl.Restore(serve.ModelKey{Job: job, Env: env}, s, at)
				},
				Digest: func(job, env string, fresh int, at time.Time) {
					ctl.RestoreDigest(serve.ModelKey{Job: job, Env: env})
				},
			})
			if err != nil {
				// A corrupt sealed segment stops replay at its clean
				// prefix; serving continues on what was recovered.
				fmt.Printf("store: replay stopped early: %v\n", err)
			}
			rs := st.StoreStats()
			fmt.Printf("store: recovered %d observations and %d digests from %s (repaired %d torn bytes)\n",
				rs.ReplayedObservations, rs.ReplayedDigests, *dataDir, rs.RepairedBytes)
		}
		ctl.Start()
		defer ctl.Stop()
		fmt.Printf("online fine-tuning on: every %v, %d fresh samples per model trigger a refresh\n",
			*ftInterval, *ftMinSamples)
	}
	if st != nil {
		st.Start()
		fmt.Printf("durable store on: %s (fsync=%s, compaction every %v)\n", *dataDir, *fsyncMode, *compactEvery)
	}

	var lc serve.LoadControl
	if *rate > 0 {
		lc.Limiter = loadctl.NewLimiter(loadctl.LimiterConfig{
			Rate:       *rate,
			Burst:      *rateBurst,
			MaxClients: *maxClients,
		})
	}
	if *maxInFlight >= 0 {
		lc.Gate = loadctl.NewGate(loadctl.GateConfig{
			MaxInFlight: *maxInFlight,
			MaxQueue:    *maxQueue,
			MaxWait:     *maxWait,
		})
	}
	lc.MaxDeadline = *maxDeadline
	if lc.Limiter != nil || lc.Gate != nil {
		svc.AttachLoadControl(lc)
		fmt.Printf("load control on: %g req/s per client, gate %d in flight / %d queued (heavy %d), shed after %v\n",
			*rate, *maxInFlight, *maxQueue, max(*maxQueue/2, 1), *maxWait)
	}

	srv := &http.Server{
		Handler: svc.Handler(),
		// Full-request read and write bounds (not just headers): a
		// slow-loris client trickling its body, or one never draining the
		// response, is cut off instead of pinning a connection forever.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving models from %s on %s\n", *modelsDir, ln.Addr())
	fmt.Println("endpoints: POST /v1/predict, POST /v1/predict/batch, POST /v1/allocate, POST /v1/observe, GET /v1/stats, GET /healthz")
	if testHookServeReady != nil {
		testHookServeReady(ln.Addr().String())
	}

	// Serve until SIGTERM/SIGINT, then drain: mark not-ready so load
	// balancers stop sending work, let in-flight requests finish, digest
	// pending observations into a final checkpoint, and seal the WAL.
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Printf("received %v: draining (timeout %v)\n", sig, *drainTimeout)
	}
	svc.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		// Stragglers past the timeout are abandoned, but everything
		// below still runs: the WAL seal must happen regardless.
		fmt.Printf("drain: shutdown incomplete: %v\n", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Printf("drain: server error: %v\n", err)
	}
	if ctl != nil {
		if n := ctl.Drain(); n > 0 {
			fmt.Printf("drain: digested pending observations into %d model version(s)\n", n)
		}
	}
	if st != nil {
		if err := st.Close(); err != nil {
			return fmt.Errorf("drain: closing store: %w", err)
		}
		fmt.Println("drain: store sealed")
	}
	fmt.Println("drain: complete")
	return nil
}
