package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/allocate"
	"repro/internal/baselines"
	"repro/internal/core"
)

// pointsFlag collects repeated -observe scaleOut=runtime flags.
type pointsFlag struct {
	points []baselines.Point
}

func (p *pointsFlag) String() string {
	parts := make([]string, len(p.points))
	for i, pt := range p.points {
		parts[i] = fmt.Sprintf("%d=%g", pt.ScaleOut, pt.Runtime)
	}
	return strings.Join(parts, ",")
}

func (p *pointsFlag) Set(s string) error {
	so, rt, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("observation %q must be scaleOut=runtimeSec", s)
	}
	x, err := strconv.Atoi(so)
	if err != nil {
		return fmt.Errorf("observation scale-out %q: %w", so, err)
	}
	r, err := strconv.ParseFloat(rt, 64)
	if err != nil {
		return fmt.Errorf("observation runtime %q: %w", rt, err)
	}
	p.points = append(p.points, baselines.Point{ScaleOut: x, Runtime: r})
	return nil
}

func runAllocate(args []string) error {
	fs := flag.NewFlagSet("allocate", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model path (required)")
	minSO := fs.Int("min-scale-out", 1, "smallest candidate scale-out")
	maxSO := fs.Int("max-scale-out", 16, "largest candidate scale-out")
	step := fs.Int("step", 1, "candidate scale-out stride")
	deadline := fs.Float64("deadline", 0, "runtime SLO in seconds (required)")
	cost := fs.Float64("cost", 1, "cost per node-hour")
	margin := fs.Float64("margin", 0, "safety margin as a fraction of the deadline (e.g. 0.1)")
	minSamples := fs.Int("min-samples", 0, "fine-tune samples the model must have, else fall back to interpolating -observe points")
	essential := &propsFlag{}
	optional := &propsFlag{optional: true}
	observations := &pointsFlag{}
	fs.Var(essential, "essential", "essential property name=value (repeatable, in model order)")
	fs.Var(optional, "optional", "optional property name=value (repeatable)")
	fs.Var(observations, "observe", "measured scaleOut=runtimeSec point for the fallback (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("allocate: missing -model")
	}
	if *deadline <= 0 {
		return fmt.Errorf("allocate: missing or non-positive -deadline")
	}

	m, err := core.LoadFile(*modelPath)
	if err != nil {
		return fmt.Errorf("allocate: %w", err)
	}
	engine := allocate.NewEngine()
	res, err := engine.Allocate(m, allocate.Request{
		Essential:       essential.props,
		Optional:        optional.props,
		MinScaleOut:     *minSO,
		MaxScaleOut:     *maxSO,
		Step:            *step,
		DeadlineSec:     *deadline,
		CostPerNodeHour: *cost,
		SafetyMargin:    *margin,
		MinModelSamples: *minSamples,
		Observations:    observations.points,
	})
	if err != nil {
		return fmt.Errorf("allocate: %w", err)
	}

	fmt.Printf("%10s %14s %14s %12s %6s\n", "scale-out", "predicted [s]", "smoothed [s]", "cost", "SLO")
	for _, cp := range res.Curve {
		mark := " "
		if cp.MeetsSLO {
			mark = "ok"
		}
		chosen := " "
		if cp.ScaleOut == res.Chosen.ScaleOut {
			chosen = "*"
		}
		fmt.Printf("%9d%s %14.2f %14.2f %12.4f %6s\n",
			cp.ScaleOut, chosen, cp.PredictedSec, cp.SmoothedSec, cp.Cost, mark)
	}
	fmt.Println()
	switch {
	case res.Feasible:
		fmt.Printf("chosen: scale-out %d at %.2fs (cost %.4f), margin %.1fs (%.0f%% of deadline), source %s\n",
			res.Chosen.ScaleOut, res.Chosen.SmoothedSec, res.Chosen.Cost,
			res.MarginSec, res.MarginFrac*100, res.Source)
	default:
		fmt.Printf("SLO VIOLATION: no candidate meets the %.2fs deadline; best effort is scale-out %d at %.2fs (cost %.4f, %.1fs over), source %s\n",
			*deadline, res.Chosen.ScaleOut, res.Chosen.SmoothedSec, res.Chosen.Cost,
			-res.MarginSec, res.Source)
	}
	if res.Fallback {
		fmt.Println("note: model had too little fine-tune support; curve interpolated from -observe points")
	}
	if res.LowSupport {
		fmt.Println("warning: model reports less fine-tune support than -min-samples and no -observe points were given")
	}
	return nil
}
