// Command bellamy is the end-to-end entrypoint of the Bellamy runtime
// prediction system: it trains models on execution traces, answers
// predictions from the command line, serves them over HTTP, generates
// simulated datasets, and runs the paper's experiments.
package main

import (
	"fmt"
	"os"
)

const usage = `bellamy — runtime prediction for distributed dataflow jobs

Usage:
  bellamy train      -data <csv|sim:c3o|sim:bell> -out <model> [flags]
  bellamy predict    -model <model> -scale-outs <2,4,...> [flags]
  bellamy allocate   -model <model> -deadline <sec> [-min-scale-out 1 -max-scale-out 16] [flags]
  bellamy serve      -models <dir> [-addr :8080] [flags]
  bellamy bench      -url <http://host:port> -job <name> [-rates 100,1000] [flags]
  bellamy experiment -kind <crosscontext|crossenv|allocation> [flags]
  bellamy dataset    -env <c3o|bell> [-out <csv>] [flags]

Run "bellamy <subcommand> -h" for the flags of each subcommand.`

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, usage)
		os.Exit(2)
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "train":
		err = runTrain(os.Args[2:])
	case "predict":
		err = runPredict(os.Args[2:])
	case "allocate":
		err = runAllocate(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "bench":
		err = runBench(os.Args[2:])
	case "experiment":
		err = runExperiment(os.Args[2:])
	case "dataset":
		err = runDataset(os.Args[2:])
	case "-h", "--help", "help":
		fmt.Println(usage)
	default:
		fmt.Fprintf(os.Stderr, "bellamy: unknown subcommand %q\n\n%s\n", cmd, usage)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bellamy:", err)
		os.Exit(1)
	}
}
