package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hyperopt"
)

// loadDataset resolves the -data argument: "sim:c3o" / "sim:bell" for
// the seeded simulators, anything else as a CSV path.
func loadDataset(spec string, seed int64) (*dataset.Dataset, error) {
	switch spec {
	case "sim:c3o":
		return dataset.GenerateC3O(dataset.SimConfig{Seed: seed}), nil
	case "sim:bell":
		return dataset.GenerateBell(dataset.SimConfig{Seed: seed}), nil
	case "":
		return nil, fmt.Errorf("missing -data (CSV path, sim:c3o or sim:bell)")
	}
	f, err := os.Open(spec)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return dataset.ReadCSV(f)
}

func runTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "", "training traces: CSV path, sim:c3o or sim:bell")
	job := fs.String("job", "", "restrict training to one job's executions")
	out := fs.String("out", "", "output model path (required)")
	epochs := fs.Int("epochs", 250, "pre-training epochs (paper: 2500)")
	seed := fs.Int64("seed", 1, "seed for simulation and weight init")
	trials := fs.Int("hyperopt", 0, "hyperparameter-search trials before training (paper: 12; 0 = use defaults)")
	workers := fs.Int("hyperopt-workers", 0, "parallel trials (0 = all cores; matmuls share one bounded pool)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("train: missing -out")
	}

	ds, err := loadDataset(*data, *seed)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	execs := ds.Executions
	if *job != "" {
		execs = ds.ForJob(*job)
		if len(execs) == 0 {
			return fmt.Errorf("train: no executions for job %q (have: %s)",
				*job, strings.Join(ds.Jobs(), ", "))
		}
	}
	samples := core.SamplesFromExecutions(execs)

	cfg := core.DefaultConfig()
	cfg.PretrainEpochs = *epochs
	cfg.Seed = *seed

	// Optional Table-I hyperparameter search: candidate models pre-train
	// in parallel across cores, with their matmuls bounded by the shared
	// mat worker pool so trial fan-out cannot oversubscribe the machine.
	if *trials > 0 {
		fmt.Printf("hyperopt: %d trials on %d executions...\n", *trials, len(samples))
		opts := hyperopt.DefaultOptions()
		opts.Trials = *trials
		opts.Workers = *workers
		opts.Seed = *seed
		res, err := hyperopt.Search(cfg, samples, hyperopt.DefaultSpace(), opts)
		if err != nil {
			return fmt.Errorf("train: hyperopt: %w", err)
		}
		cfg = res.Apply(cfg)
		fmt.Printf("hyperopt: best dropout=%.2f lr=%.0e wd=%.0e (val MAE %.2fs)\n",
			res.Best.Dropout, res.Best.LearningRate, res.Best.WeightDecay, res.Best.ValMAE)
	}

	m, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	fmt.Printf("pre-training on %d executions (%d epochs)...\n", len(samples), *epochs)
	rep, err := m.Pretrain(samples)
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}
	if err := m.SaveFile(*out); err != nil {
		return fmt.Errorf("train: %w", err)
	}
	epochsPerSec := float64(rep.Epochs) / rep.Duration.Seconds()
	fmt.Printf("trained %s: best MAE %.2fs at epoch %d, final runtime loss %.4f, took %s (%.0f epochs/s)\n",
		*out, rep.BestMAE, rep.BestEpoch, rep.FinalRuntimeLoss, rep.Duration.Round(0), epochsPerSec)
	return nil
}
