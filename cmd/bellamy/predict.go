package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/encoding"
)

// propsFlag collects repeated -essential / -optional name=value flags.
type propsFlag struct {
	props    []encoding.Property
	optional bool
}

func (p *propsFlag) String() string {
	parts := make([]string, len(p.props))
	for i, pr := range p.props {
		parts[i] = pr.Name + "=" + pr.Value
	}
	return strings.Join(parts, ",")
}

func (p *propsFlag) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("property %q must be name=value", s)
	}
	p.props = append(p.props, encoding.Property{Name: name, Value: value, Optional: p.optional})
	return nil
}

func parseScaleOuts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		x, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("scale-out %q: %w", part, err)
		}
		out = append(out, x)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("missing -scale-outs (e.g. -scale-outs 2,4,8)")
	}
	return out, nil
}

func runPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	modelPath := fs.String("model", "", "trained model path (required)")
	scaleOuts := fs.String("scale-outs", "", "comma-separated scale-outs to predict")
	essential := &propsFlag{}
	optional := &propsFlag{optional: true}
	fs.Var(essential, "essential", "essential property name=value (repeatable, in model order)")
	fs.Var(optional, "optional", "optional property name=value (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *modelPath == "" {
		return fmt.Errorf("predict: missing -model")
	}
	xs, err := parseScaleOuts(*scaleOuts)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}

	m, err := core.LoadFile(*modelPath)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	queries := make([]core.Query, len(xs))
	for i, x := range xs {
		queries[i] = core.Query{ScaleOut: x, Essential: essential.props, Optional: optional.props}
	}
	preds, err := m.PredictBatch(queries)
	if err != nil {
		return fmt.Errorf("predict: %w", err)
	}
	fmt.Printf("%10s %14s\n", "scale-out", "runtime [s]")
	for i, x := range xs {
		fmt.Printf("%10d %14.2f\n", x, preds[i])
	}
	return nil
}
