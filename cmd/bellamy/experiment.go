package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func runExperiment(args []string) error {
	fs := flag.NewFlagSet("experiment", flag.ExitOnError)
	kind := fs.String("kind", "crosscontext", "experiment: crosscontext (§IV-C1), crossenv (§IV-C2) or allocation")
	seed := fs.Int64("seed", 1, "seed for simulation, splits and model init")
	jobs := fs.String("jobs", "", "comma-separated job filter (default: all)")
	maxSplits := fs.Int("max-splits", 0, "splits per training size (0 = laptop-scale default)")
	contexts := fs.Int("contexts", 0, "target contexts per job, crosscontext only (0 = default 7)")
	pretrainEpochs := fs.Int("pretrain-epochs", 0, "pre-training epochs (0 = laptop-scale default)")
	finetuneEpochs := fs.Int("finetune-epochs", 0, "fine-tuning epochs (0 = laptop-scale default)")
	workers := fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var jobList []string
	if *jobs != "" {
		for _, j := range strings.Split(*jobs, ",") {
			jobList = append(jobList, strings.TrimSpace(j))
		}
	}

	switch *kind {
	case "crosscontext":
		cfg := experiments.DefaultCrossContextConfig()
		cfg.Seed = *seed
		cfg.Jobs = jobList
		cfg.Workers = *workers
		if *maxSplits > 0 {
			cfg.MaxSplits = *maxSplits
		}
		if *contexts > 0 {
			cfg.ContextsPerJob = *contexts
		}
		if *pretrainEpochs > 0 {
			cfg.Model.PretrainEpochs = *pretrainEpochs
		}
		if *finetuneEpochs > 0 {
			cfg.Model.FinetuneEpochs = *finetuneEpochs
		}
		ds := dataset.GenerateC3O(dataset.SimConfig{Seed: *seed})
		fmt.Printf("cross-context experiment on %d executions...\n", ds.Len())
		res, err := experiments.RunCrossContext(ds, cfg)
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		fmt.Println(experiments.FormatMRETable(res.Measurements, false))
		fmt.Println(experiments.FormatMRETable(res.Measurements, true))
		fmt.Println(experiments.FormatMAETable(res.Measurements, "Cross-context (Fig. 6)"))
		fmt.Println(experiments.FormatEpochECDF(res.Measurements))
		fmt.Println(experiments.FormatFitTimes(res.Measurements))
	case "allocation":
		cfg := experiments.DefaultAllocationConfig()
		cfg.Seed = *seed
		cfg.Jobs = jobList
		cfg.Workers = *workers
		if *maxSplits > 0 {
			cfg.MaxSplits = *maxSplits
		}
		if *contexts > 0 {
			cfg.ContextsPerJob = *contexts
		}
		if *pretrainEpochs > 0 {
			cfg.Model.PretrainEpochs = *pretrainEpochs
		}
		if *finetuneEpochs > 0 {
			cfg.Model.FinetuneEpochs = *finetuneEpochs
		}
		ds := dataset.GenerateC3O(dataset.SimConfig{Seed: *seed})
		fmt.Printf("allocation-quality experiment on %d executions...\n", ds.Len())
		res, err := experiments.RunAllocation(ds, cfg)
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		fmt.Println(experiments.FormatAllocationTable(res.Measurements))
	case "crossenv":
		cfg := experiments.DefaultCrossEnvConfig()
		cfg.Seed = *seed
		cfg.Jobs = jobList
		cfg.Workers = *workers
		if *maxSplits > 0 {
			cfg.MaxSplits = *maxSplits
		}
		if *pretrainEpochs > 0 {
			cfg.Model.PretrainEpochs = *pretrainEpochs
		}
		if *finetuneEpochs > 0 {
			cfg.Model.FinetuneEpochs = *finetuneEpochs
		}
		c3o := dataset.GenerateC3O(dataset.SimConfig{Seed: *seed})
		bell := dataset.GenerateBell(dataset.SimConfig{Seed: *seed + 1})
		fmt.Printf("cross-environment experiment: %d C3O / %d Bell executions...\n", c3o.Len(), bell.Len())
		res, err := experiments.RunCrossEnv(c3o, bell, cfg)
		if err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
		fmt.Println(experiments.FormatMAETable(res.Measurements, "Cross-environment (Fig. 8)"))
		fmt.Println(experiments.FormatFitTimes(res.Measurements))
	default:
		return fmt.Errorf("experiment: unknown -kind %q (want crosscontext, crossenv or allocation)", *kind)
	}
	return nil
}
